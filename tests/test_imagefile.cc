/**
 * @file
 * Tests for the RISO on-disk image format: byte-level round-trips,
 * malformed-input rejection, and file I/O through a real emulation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gx86/assembler.hh"
#include "gx86/imagefile.hh"
#include "gx86/interp.hh"
#include "support/error.hh"

namespace
{

using namespace risotto;
using namespace risotto::gx86;

GuestImage
sampleImage()
{
    Assembler a;
    a.dataQuad(0xdeadbeef);
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("helper_fn");
    a.bindGuestImplHere("helper_fn");
    a.muli(1, 2);
    a.ret();
    a.bind(start);
    a.movri(1, 21);
    a.callImport("helper_fn");
    a.movri(0, 0);
    a.syscall();
    return a.finish("main");
}

TEST(ImageFile, RoundTripPreservesEverything)
{
    const GuestImage original = sampleImage();
    const GuestImage copy =
        deserializeImage(serializeImage(original));
    EXPECT_EQ(copy.textBase, original.textBase);
    EXPECT_EQ(copy.dataBase, original.dataBase);
    EXPECT_EQ(copy.entry, original.entry);
    EXPECT_EQ(copy.text, original.text);
    EXPECT_EQ(copy.data, original.data);
    ASSERT_EQ(copy.symbols.size(), original.symbols.size());
    for (std::size_t i = 0; i < copy.symbols.size(); ++i) {
        EXPECT_EQ(copy.symbols[i].name, original.symbols[i].name);
        EXPECT_EQ(copy.symbols[i].addr, original.symbols[i].addr);
    }
    ASSERT_EQ(copy.dynsym.size(), original.dynsym.size());
    for (std::size_t i = 0; i < copy.dynsym.size(); ++i) {
        EXPECT_EQ(copy.dynsym[i].name, original.dynsym[i].name);
        EXPECT_EQ(copy.dynsym[i].pltAddr, original.dynsym[i].pltAddr);
        EXPECT_EQ(copy.dynsym[i].guestImpl, original.dynsym[i].guestImpl);
    }
}

TEST(ImageFile, DeserializedImageStillRuns)
{
    const GuestImage copy =
        deserializeImage(serializeImage(sampleImage()));
    Interpreter interp(copy);
    EXPECT_EQ(interp.run().exitCode, 42);
}

TEST(ImageFile, RejectsCorruptInput)
{
    std::vector<std::uint8_t> bytes = serializeImage(sampleImage());
    // Bad magic.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(deserializeImage(bad_magic), FatalError);
    // Truncated.
    auto truncated = bytes;
    truncated.resize(truncated.size() / 2);
    EXPECT_THROW(deserializeImage(truncated), FatalError);
    // Trailing garbage.
    auto trailing = bytes;
    trailing.push_back(0x42);
    EXPECT_THROW(deserializeImage(trailing), FatalError);
    // Empty.
    EXPECT_THROW(deserializeImage({}), FatalError);
}

/** Deserialization must throw a FatalError mentioning @p needle. */
void
expectRejected(const std::vector<std::uint8_t> &bytes,
               const std::string &needle)
{
    try {
        deserializeImage(bytes);
        FAIL() << "image unexpectedly accepted (wanted: " << needle << ")";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "wrong rejection: " << e.what();
    }
}

/** Serialize sampleImage() after applying @p tweak (the writer does not
 * validate, so this produces checksum-valid but structurally hostile
 * bytes that only the hardened loader can reject). */
template <typename Tweak>
std::vector<std::uint8_t>
serializeTweaked(Tweak tweak)
{
    GuestImage image = sampleImage();
    tweak(image);
    return serializeImage(image);
}

/** Recompute the trailing FNV-1a checksum after editing header bytes. */
void
refreshChecksum(std::vector<std::uint8_t> &bytes)
{
    const std::size_t payload = bytes.size() - 8;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < payload; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    for (std::size_t i = 0; i < 8; ++i)
        bytes[payload + i] = static_cast<std::uint8_t>(h >> (8 * i));
}

TEST(ImageFileHardening, RejectsTruncatedHeader)
{
    const std::vector<std::uint8_t> bytes = serializeImage(sampleImage());
    for (const std::size_t keep : {0u, 3u, 6u, 10u, 20u, 63u}) {
        auto cut = bytes;
        cut.resize(keep);
        EXPECT_THROW(deserializeImage(cut), FatalError) << keep;
    }
}

TEST(ImageFileHardening, RejectsChecksumCorruption)
{
    // Flip one payload byte deep inside the text section: the structure
    // still parses, but the checksum must catch the bit rot before any
    // field is trusted.
    auto bytes = serializeImage(sampleImage());
    bytes[bytes.size() / 2] ^= 0x01;
    expectRejected(bytes, "checksum mismatch");
}

TEST(ImageFileHardening, RejectsUnsupportedVersions)
{
    auto bytes = serializeImage(sampleImage());
    for (const std::uint8_t version : {0, 3, 255}) {
        auto patched = bytes;
        patched[4] = version;
        expectRejected(patched, "unsupported RISO version");
    }
}

TEST(ImageFileHardening, AcceptsVersion1WithoutChecksum)
{
    // v1 images predate the checksum; the loader still takes them.
    auto bytes = serializeImage(sampleImage());
    bytes.resize(bytes.size() - 8); // Strip the checksum.
    bytes[4] = 1;                   // Declare version 1.
    const GuestImage loaded = deserializeImage(bytes);
    EXPECT_EQ(loaded.text, sampleImage().text);
    Interpreter interp(loaded);
    EXPECT_EQ(interp.run().exitCode, 42);
}

TEST(ImageFileHardening, RejectsHostileSizeFields)
{
    // A near-2^64 text size must fail the bounds check, not wrap the
    // read cursor past the end of the buffer.
    auto bytes = serializeImage(sampleImage());
    for (std::size_t i = 32; i < 40; ++i)
        bytes[i] = 0xff;
    refreshChecksum(bytes);
    expectRejected(bytes, "truncated");
}

TEST(ImageFileHardening, RejectsHostileSymbolCounts)
{
    auto bytes = serializeImage(sampleImage());
    for (std::size_t i = 48; i < 56; ++i)
        bytes[i] = 0xff;
    refreshChecksum(bytes);
    expectRejected(bytes, "truncated");
}

TEST(ImageFileHardening, RejectsOverlappingSections)
{
    const auto bytes = serializeTweaked(
        [](GuestImage &image) { image.dataBase = image.textBase; });
    expectRejected(bytes, "overlap");
}

TEST(ImageFileHardening, RejectsWrappingSections)
{
    const auto bytes = serializeTweaked([](GuestImage &image) {
        image.textBase = ~std::uint64_t{0} - 4;
        image.entry = image.textBase;
    });
    expectRejected(bytes, "wraps the address space");
}

TEST(ImageFileHardening, RejectsEntryOutsideText)
{
    const auto bytes = serializeTweaked([](GuestImage &image) {
        image.entry = image.textBase + image.text.size() + 0x100;
    });
    expectRejected(bytes, "entry point outside text");
}

TEST(ImageFileHardening, RejectsOutOfBoundsSymbols)
{
    const auto symbol = serializeTweaked([](GuestImage &image) {
        image.symbols.push_back({"ghost", 0xffff0000});
    });
    expectRejected(symbol, "symbol 'ghost' outside every section");

    const auto plt = serializeTweaked([](GuestImage &image) {
        if (image.dynsym.empty())
            return;
        image.dynsym[0].pltAddr = 0xffff0000;
    });
    expectRejected(plt, "PLT stub");

    const auto impl = serializeTweaked([](GuestImage &image) {
        if (image.dynsym.empty())
            return;
        image.dynsym[0].guestImpl = 0xffff0000;
    });
    expectRejected(impl, "guest impl");
}

TEST(ImageFile, SerializeIsByteIdenticalAfterRoundTrip)
{
    // serialize(deserialize(serialize(x))) must reproduce the exact
    // bytes: the format has no unordered containers or padding whose
    // re-encoding could drift, which snapshot keying (SHA-256 of these
    // bytes) depends on.
    const auto first = serializeImage(sampleImage());
    const auto second = serializeImage(deserializeImage(first));
    EXPECT_EQ(first, second);
}

TEST(ImageFile, RoundTripsMaximalSymbolTables)
{
    GuestImage image = sampleImage();
    // Pile on symbols (shared addresses are legal; only out-of-section
    // addresses are not) including a name at the 0xffff length cap.
    for (int i = 0; i < 4096; ++i)
        image.symbols.push_back(
            {"sym_" + std::to_string(i), image.entry});
    image.symbols.push_back(
        {std::string(0xffff, 'n'), image.entry});
    for (int i = 0; i < 512; ++i) {
        DynSymbol d;
        d.name = "dyn_" + std::to_string(i);
        d.pltAddr = image.entry;
        image.dynsym.push_back(std::move(d));
    }
    const auto bytes = serializeImage(image);
    const GuestImage copy = deserializeImage(bytes);
    EXPECT_EQ(copy.symbols.size(), image.symbols.size());
    EXPECT_EQ(copy.dynsym.size(), image.dynsym.size());
    EXPECT_EQ(copy.symbols.back().name.size(), 0xffffu);
    EXPECT_EQ(serializeImage(copy), bytes);
}

TEST(ImageFile, RoundTripsEmptySections)
{
    // Smallest legal image: code but no data, no symbols at all.
    Assembler a;
    a.defineSymbol("main");
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    image.data.clear();
    image.symbols.clear();
    image.dynsym.clear();
    const auto bytes = serializeImage(image);
    const GuestImage copy = deserializeImage(bytes);
    EXPECT_TRUE(copy.data.empty());
    EXPECT_TRUE(copy.symbols.empty());
    EXPECT_TRUE(copy.dynsym.empty());
    EXPECT_EQ(copy.text, image.text);
    EXPECT_EQ(serializeImage(copy), bytes);
}

TEST(ImageFile, SaveAndLoadFile)
{
    const std::string path = "/tmp/risotto_imagefile_test.riso";
    const GuestImage original = sampleImage();
    saveImage(original, path);
    const GuestImage loaded = loadImage(path);
    EXPECT_EQ(loaded.text, original.text);
    Interpreter interp(loaded);
    EXPECT_EQ(interp.run().exitCode, 42);
    std::remove(path.c_str());
    EXPECT_THROW(loadImage(path), FatalError);
}

} // namespace
