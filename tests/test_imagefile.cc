/**
 * @file
 * Tests for the RISO on-disk image format: byte-level round-trips,
 * malformed-input rejection, and file I/O through a real emulation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gx86/assembler.hh"
#include "gx86/imagefile.hh"
#include "gx86/interp.hh"
#include "support/error.hh"

namespace
{

using namespace risotto;
using namespace risotto::gx86;

GuestImage
sampleImage()
{
    Assembler a;
    a.dataQuad(0xdeadbeef);
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("helper_fn");
    a.bindGuestImplHere("helper_fn");
    a.muli(1, 2);
    a.ret();
    a.bind(start);
    a.movri(1, 21);
    a.callImport("helper_fn");
    a.movri(0, 0);
    a.syscall();
    return a.finish("main");
}

TEST(ImageFile, RoundTripPreservesEverything)
{
    const GuestImage original = sampleImage();
    const GuestImage copy =
        deserializeImage(serializeImage(original));
    EXPECT_EQ(copy.textBase, original.textBase);
    EXPECT_EQ(copy.dataBase, original.dataBase);
    EXPECT_EQ(copy.entry, original.entry);
    EXPECT_EQ(copy.text, original.text);
    EXPECT_EQ(copy.data, original.data);
    ASSERT_EQ(copy.symbols.size(), original.symbols.size());
    for (std::size_t i = 0; i < copy.symbols.size(); ++i) {
        EXPECT_EQ(copy.symbols[i].name, original.symbols[i].name);
        EXPECT_EQ(copy.symbols[i].addr, original.symbols[i].addr);
    }
    ASSERT_EQ(copy.dynsym.size(), original.dynsym.size());
    for (std::size_t i = 0; i < copy.dynsym.size(); ++i) {
        EXPECT_EQ(copy.dynsym[i].name, original.dynsym[i].name);
        EXPECT_EQ(copy.dynsym[i].pltAddr, original.dynsym[i].pltAddr);
        EXPECT_EQ(copy.dynsym[i].guestImpl, original.dynsym[i].guestImpl);
    }
}

TEST(ImageFile, DeserializedImageStillRuns)
{
    const GuestImage copy =
        deserializeImage(serializeImage(sampleImage()));
    Interpreter interp(copy);
    EXPECT_EQ(interp.run().exitCode, 42);
}

TEST(ImageFile, RejectsCorruptInput)
{
    std::vector<std::uint8_t> bytes = serializeImage(sampleImage());
    // Bad magic.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(deserializeImage(bad_magic), FatalError);
    // Truncated.
    auto truncated = bytes;
    truncated.resize(truncated.size() / 2);
    EXPECT_THROW(deserializeImage(truncated), FatalError);
    // Trailing garbage.
    auto trailing = bytes;
    trailing.push_back(0x42);
    EXPECT_THROW(deserializeImage(trailing), FatalError);
    // Empty.
    EXPECT_THROW(deserializeImage({}), FatalError);
}

TEST(ImageFile, SaveAndLoadFile)
{
    const std::string path = "/tmp/risotto_imagefile_test.riso";
    const GuestImage original = sampleImage();
    saveImage(original, path);
    const GuestImage loaded = loadImage(path);
    EXPECT_EQ(loaded.text, original.text);
    Interpreter interp(loaded);
    EXPECT_EQ(interp.run().exitCode, 42);
    std::remove(path.c_str());
    EXPECT_THROW(loadImage(path), FatalError);
}

} // namespace
