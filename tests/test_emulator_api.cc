/**
 * @file
 * Tests for the top-level public API: the Emulator facade, custom host
 * functions, verifyPipeline, and misuse handling.
 */

#include <gtest/gtest.h>

#include "gx86/assembler.hh"
#include "risotto/risotto.hh"
#include "support/error.hh"

namespace
{

using namespace risotto;
using gx86::Addr;
using gx86::Assembler;
using gx86::Cond;

gx86::GuestImage
counterImage(Addr *counter_out)
{
    Assembler a;
    const Addr counter = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(counter));
    a.movri(5, 1);
    a.movri(14, 100);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.movri(5, 1);
    a.lockXadd(4, 0, 5);
    a.subi(14, 1);
    a.cmpri(14, 0);
    a.jcc(Cond::Gt, loop);
    a.movrr(1, 0);
    a.movri(0, 0);
    a.syscall();
    *counter_out = counter;
    return a.finish("main");
}

TEST(EmulatorApi, MultiThreadedRun)
{
    Addr counter = 0;
    Emulator emulator(counterImage(&counter));
    const auto result = emulator.run(4);
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(result.memory->load64(counter), 400u);
    EXPECT_EQ(result.exitCodes.size(), 4u);
    // Thread ids arrive in guest r0 -> exit codes are 0..3.
    for (std::size_t t = 0; t < 4; ++t)
        EXPECT_EQ(result.exitCodes[t], static_cast<std::int64_t>(t));
}

TEST(EmulatorApi, CustomHostFunctionThroughIdl)
{
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("popcount64");
    a.bind(start);
    a.movri(1, 0x5555aaaa);
    a.callImport("popcount64");
    a.movrr(1, 0);
    a.movri(0, 0);
    a.syscall();
    const gx86::GuestImage image = a.finish("main");

    EmulatorOptions options;
    options.extraIdl = "i64 popcount64(u64);";
    Emulator emulator(image, options);
    emulator.addHostFunction(
        "popcount64", [](const std::vector<std::uint64_t> &args,
                         gx86::Memory &, std::uint64_t &cost) {
            cost = 2;
            return static_cast<std::uint64_t>(
                __builtin_popcountll(args[0]));
        });
    const auto result = emulator.run(1);
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(result.exitCodes[0], 16);
    // Exactly this import resolved.
    const auto linked = emulator.linkedFunctions();
    ASSERT_EQ(linked.size(), 1u);
    EXPECT_EQ(linked[0], "popcount64");
}

TEST(EmulatorApi, RegisteringAfterRunIsAnError)
{
    Addr counter = 0;
    Emulator emulator(counterImage(&counter));
    emulator.run(1);
    EXPECT_THROW(
        emulator.addHostFunction(
            "late", [](const std::vector<std::uint64_t> &, gx86::Memory &,
                       std::uint64_t &) { return 0ULL; }),
        FatalError);
}

TEST(EmulatorApi, UnresolvedImportFaultsAtTranslation)
{
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("nonexistent");
    a.bind(start);
    a.callImport("nonexistent");
    a.hlt();
    EmulatorOptions options;
    options.loadStandardHostLibraries = false;
    Emulator emulator(a.finish("main"), options);
    EXPECT_THROW(emulator.run(1), GuestFault);
}

TEST(EmulatorApi, VerifyPipelineMatchesExpectations)
{
    const auto good = verifyPipeline(mapping::X86ToTcgScheme::Risotto,
                                     mapping::TcgToArmScheme::Risotto,
                                     mapping::RmwLowering::InlineCasal);
    EXPECT_FALSE(good.empty());
    for (const MappingVerdict &v : good)
        EXPECT_TRUE(v.refines) << v.test;

    const auto bad = verifyPipeline(mapping::X86ToTcgScheme::Qemu,
                                    mapping::TcgToArmScheme::Qemu,
                                    mapping::RmwLowering::HelperRmw2AL);
    std::size_t violations = 0;
    for (const MappingVerdict &v : bad)
        violations += v.refines ? 0 : 1;
    EXPECT_GE(violations, 2u);
}

TEST(EmulatorApi, VersionStringIsInformative)
{
    EXPECT_NE(versionString().find("risotto"), std::string::npos);
}

} // namespace
