/**
 * @file
 * End-to-end DBT tests: differential equivalence against the reference
 * guest interpreter across all DBT variants, multi-threaded atomics,
 * block chaining, and the end-to-end weak-memory behaviour of the
 * translated code (no-fences shows the weak MP outcome on the relaxed
 * machine; the verified mappings never do).
 */

#include <gtest/gtest.h>

#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "gx86/interp.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;
using namespace risotto::gx86;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

std::vector<DbtConfig>
allConfigs()
{
    return {DbtConfig::qemu(), DbtConfig::qemuNoFences(),
            DbtConfig::tcgVer(), DbtConfig::risotto()};
}

/** Run @p image single-threaded through the DBT. */
dbt::RunResult
runDbt(const GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    return engine.run({ThreadSpec{}});
}

/** Differential check: interpreter vs every DBT variant. */
void
expectAllVariantsMatchInterp(const GuestImage &image,
                             const std::vector<Addr> &probe_addrs = {})
{
    Interpreter interp(image);
    const InterpResult expected = interp.run();
    for (const DbtConfig &config : allConfigs()) {
        const auto result = runDbt(image, config);
        ASSERT_TRUE(result.finished) << config.name;
        EXPECT_EQ(result.exitCodes[0], expected.exitCode) << config.name;
        EXPECT_EQ(result.outputs[0], expected.output) << config.name;
        for (Addr addr : probe_addrs)
            EXPECT_EQ(result.memory->load64(addr),
                      interp.memory().load64(addr))
                << config.name << " @ " << addr;
    }
}

TEST(DbtBasic, StraightLineArithmetic)
{
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 10);
    a.movri(2, 32);
    a.add(1, 2);
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, LoopsAndBranches)
{
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, 100);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.add(1, 2);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, AllConditionCodes)
{
    // Exercise every Jcc direction on both outcomes.
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    struct Case
    {
        Cond cond;
        std::int32_t lhs;
        std::int32_t rhs;
    };
    const Case cases[] = {
        {Cond::Eq, 5, 5}, {Cond::Eq, 5, 6},  {Cond::Ne, 5, 6},
        {Cond::Ne, 5, 5}, {Cond::Lt, -1, 0}, {Cond::Lt, 1, 0},
        {Cond::Ge, 3, 3}, {Cond::Ge, 2, 3},  {Cond::Le, 2, 3},
        {Cond::Le, 4, 3}, {Cond::Gt, 4, 3},  {Cond::Gt, 3, 3},
    };
    for (const Case &c : cases) {
        a.shli(1, 1);
        a.movri(2, c.lhs);
        a.cmpri(2, c.rhs);
        const auto taken = a.newLabel();
        const auto done = a.newLabel();
        a.jcc(c.cond, taken);
        a.jmp(done);
        a.bind(taken);
        a.ori(1, 1);
        a.bind(done);
    }
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, MemoryLoadsAndStores)
{
    Assembler a;
    const Addr arr = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(arr));
    for (int i = 0; i < 8; ++i) {
        a.movri(4, i * i + 1);
        a.store(3, i * 8, 4);
    }
    a.movri(1, 0);
    for (int i = 0; i < 8; ++i) {
        a.load(5, 3, i * 8);
        a.add(1, 5);
    }
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"), {arr, arr + 24});
}

TEST(DbtBasic, ByteAccesses)
{
    Assembler a;
    const Addr buf = a.dataReserve(16);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(4, 0x1ff); // Truncates to 0xff.
    a.store8(3, 0, 4);
    a.load8(1, 3, 0);
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, CallRetAndStack)
{
    Assembler a;
    const auto over = a.newLabel();
    a.defineSymbol("main");
    a.jmp(over);
    a.defineSymbol("square_plus_one");
    a.mul(1, 1);
    a.addi(1, 1);
    a.ret();
    a.bind(over);
    a.movri(1, 6);
    a.callSymbol("square_plus_one"); // 37
    a.callSymbol("square_plus_one"); // 1370
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, CmpxchgAndXadd)
{
    Assembler a;
    const Addr slot = a.dataQuad(5);
    const Addr counter = a.dataQuad(100);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(slot));
    // Failing then succeeding CAS.
    a.movri(0, 3);
    a.movri(2, 50);
    a.lockCmpxchg(4, 0, 2); // Fails; R0 <- 5.
    a.movri(6, 7);
    a.lockCmpxchg(4, 0, 6); // Succeeds; slot <- 7.
    // Fetch-add.
    a.movri(5, static_cast<std::int64_t>(counter));
    a.movri(7, 11);
    a.lockXadd(5, 0, 7); // R7 <- 100, counter <- 111.
    a.movrr(1, 7);
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"), {slot, counter});
}

TEST(DbtBasic, FloatingPointMatchesInterpreter)
{
    // Interpreter uses native FP; the DBT soft-float must agree bit for
    // bit on these values.
    Assembler a;
    const Addr out = a.dataReserve(8);
    a.defineSymbol("main");
    a.movfd(1, 1.5);
    a.movfd(2, 0.125);
    a.fadd(1, 2);
    a.fmul(1, 1);
    a.movfd(3, 3.0);
    a.fdiv(1, 3);
    a.fsqrt(1, 1);
    a.movri(4, static_cast<std::int64_t>(out));
    a.store(4, 0, 1);
    a.cvtfi(1, 1);
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"), {out});
}

TEST(DbtBasic, MfenceIsTransparentSequentially)
{
    Assembler a;
    const Addr slot = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(slot));
    a.movri(4, 1);
    a.store(3, 0, 4);
    a.mfence();
    a.load(1, 3, 0);
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, SyscallOutput)
{
    Assembler a;
    a.defineSymbol("main");
    for (char ch : std::string("dbt!")) {
        a.movri(0, 1);
        a.movri(1, ch);
        a.syscall();
    }
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

TEST(DbtBasic, GuestLibraryFallbackThroughPlt)
{
    // Without a host linker, PLT calls must route to the translated
    // guest implementation.
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("quadruple");
    a.bindGuestImplHere("quadruple");
    a.shli(1, 2);
    a.ret();
    a.bind(start);
    a.movri(1, 11);
    a.callImport("quadruple");
    a.movri(0, 0);
    a.syscall();
    expectAllVariantsMatchInterp(a.finish("main"));
}

/** Random straight-line programs, differentially tested. */
TEST(DbtDifferential, RandomStraightLinePrograms)
{
    Rng rng(99);
    for (int iter = 0; iter < 30; ++iter) {
        Assembler a;
        const Addr scratch = a.dataReserve(128);
        a.defineSymbol("main");
        a.movri(3, static_cast<std::int64_t>(scratch));
        for (int n = 0; n < 40; ++n) {
            const Reg rd = static_cast<Reg>(4 + rng.below(8));
            const Reg rs = static_cast<Reg>(4 + rng.below(8));
            switch (rng.below(10)) {
              case 0: a.movri(rd, static_cast<std::int64_t>(rng.next())); break;
              case 1: a.add(rd, rs); break;
              case 2: a.sub(rd, rs); break;
              case 3: a.xor_(rd, rs); break;
              case 4: a.mul(rd, rs); break;
              case 5: a.shli(rd, static_cast<std::uint8_t>(rng.below(63))); break;
              case 6: a.shri(rd, static_cast<std::uint8_t>(rng.below(63))); break;
              case 7:
                a.store(3, static_cast<std::int32_t>(rng.below(16)) * 8,
                        rd);
                break;
              case 8:
                a.load(rd, 3,
                       static_cast<std::int32_t>(rng.below(16)) * 8);
                break;
              case 9: a.andi(rd, static_cast<std::int32_t>(rng.next())); break;
            }
        }
        // Spill every register to memory so the check sees full state.
        for (Reg r = 4; r < 12; ++r)
            a.store(3, 64 + (r - 4) * 8, r);
        a.movri(0, 0);
        a.movri(1, 0);
        a.syscall();
        const GuestImage image = a.finish("main");
        std::vector<Addr> probes;
        for (int i = 0; i < 16; ++i)
            probes.push_back(scratch + i * 8);
        expectAllVariantsMatchInterp(image, probes);
    }
}

TEST(DbtParallel, AtomicCounterWithXadd)
{
    Assembler a;
    const Addr counter = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(counter));
    a.movri(2, 1000); // iterations
    const auto loop = a.newLabel();
    a.bind(loop);
    a.movri(5, 1);
    a.lockXadd(4, 0, 5);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    for (const DbtConfig &config :
         {DbtConfig::qemu(), DbtConfig::risotto()}) {
        Dbt engine(image, config);
        machine::MachineConfig mc;
        mc.randomize = true;
        mc.seed = 5;
        const auto result =
            engine.run({ThreadSpec{}, ThreadSpec{}, ThreadSpec{},
                        ThreadSpec{}},
                       mc);
        ASSERT_TRUE(result.finished) << config.name;
        EXPECT_EQ(result.memory->load64(counter), 4000u) << config.name;
    }
}

TEST(DbtParallel, CasLockMutualExclusion)
{
    // A spinlock via LOCK CMPXCHG protecting a plain counter.
    Assembler a;
    const Addr lock = a.dataQuad(0);
    const Addr value = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(lock));
    a.movri(5, static_cast<std::int64_t>(value));
    a.movri(2, 200); // iterations
    const auto loop = a.newLabel();
    const auto acquire = a.newLabel();
    a.bind(loop);
    a.bind(acquire);
    a.movri(0, 0); // expect unlocked
    a.movri(6, 1);
    a.lockCmpxchg(4, 0, 6);
    a.jcc(Cond::Ne, acquire); // ZF clear => failed.
    // Critical section: non-atomic increment.
    a.load(7, 5, 0);
    a.addi(7, 1);
    a.store(5, 0, 7);
    // Release.
    a.movri(6, 0);
    a.store(4, 0, 6);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    Dbt engine(image, DbtConfig::risotto());
    machine::MachineConfig mc;
    mc.randomize = true;
    mc.seed = 11;
    const auto result = engine.run({ThreadSpec{}, ThreadSpec{}}, mc);
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(result.memory->load64(value), 400u);
}

TEST(DbtWeak, NoFencesShowsWeakMpOutcomeVerifiedMappingsDoNot)
{
    // MP as a guest program: thread 0 writes X then Y; thread 1 reads Y
    // then X (selected by guest r0 at entry).
    Assembler a;
    const Addr x = a.dataQuad(0);
    const Addr y = a.dataQuad(0);
    (void)y; // Y lives at x+8.
    const Addr out = a.dataReserve(16);
    a.defineSymbol("main");
    const auto reader = a.newLabel();
    a.movri(3, static_cast<std::int64_t>(x));
    a.cmpri(0, 0);
    a.jcc(Cond::Ne, reader);
    // Writer.
    a.movri(4, 1);
    a.store(3, 0, 4); // X = 1
    a.store(3, 8, 4); // Y = 1
    a.hlt();
    // Reader.
    a.bind(reader);
    a.load(5, 3, 8); // a = Y
    a.load(6, 3, 0); // b = X
    a.movri(7, static_cast<std::int64_t>(out));
    a.store(7, 0, 5);
    a.store(7, 8, 6);
    a.hlt();
    const GuestImage image = a.finish("main");

    auto countWeak = [&](const DbtConfig &config) {
        int weak = 0;
        Dbt engine(image, config);
        for (std::uint64_t seed = 1; seed <= 400; ++seed) {
            machine::MachineConfig mc;
            mc.randomize = true;
            mc.seed = seed;
            ThreadSpec writer;
            writer.regs[0] = 0;
            ThreadSpec rdr;
            rdr.regs[0] = 1;
            const auto result = engine.run({writer, rdr}, mc);
            if (!result.finished)
                continue;
            const bool is_weak = result.memory->load64(out) == 1 &&
                                 result.memory->load64(out + 8) == 0;
            weak += is_weak ? 1 : 0;
        }
        return weak;
    };

    EXPECT_GT(countWeak(DbtConfig::qemuNoFences()), 0)
        << "no-fences never exposed the weak outcome";
    EXPECT_EQ(countWeak(DbtConfig::risotto()), 0)
        << "verified mappings leaked a weak outcome";
    EXPECT_EQ(countWeak(DbtConfig::qemu()), 0)
        << "qemu full fences leaked a weak outcome";
}

TEST(DbtEngine, TbCacheAndChaining)
{
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, 50);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.addi(1, 3);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    Dbt engine(image, DbtConfig::risotto());
    const auto result = engine.run({ThreadSpec{}});
    ASSERT_TRUE(result.finished);
    // The loop body must be translated once and chained, so tb_exits is
    // far below the iteration count.
    EXPECT_LE(result.stats.get("dbt.tbs_translated"), 8u);
    EXPECT_GE(result.stats.get("dbt.chained"), 1u);
    EXPECT_LT(result.stats.get("machine.tb_exits"), 25u);
}

TEST(DbtEngine, FenceCountsDifferByScheme)
{
    // qemu lowers store fences to DMBFF; risotto to DMBST. Count the
    // barriers actually executed.
    Assembler a;
    const Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    for (int i = 0; i < 6; ++i) {
        a.movri(4, i);
        a.store(3, 8 * i, 4);
    }
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    const auto qemu = runDbt(image, DbtConfig::qemu());
    const auto risotto = runDbt(image, DbtConfig::risotto());
    const auto nofences = runDbt(image, DbtConfig::qemuNoFences());

    EXPECT_GT(qemu.stats.get("machine.dmb_full"), 4u);
    EXPECT_GT(risotto.stats.get("machine.dmb_st"), 3u);
    EXPECT_EQ(nofences.stats.get("machine.dmb_full"), 0u);
    EXPECT_EQ(nofences.stats.get("machine.dmb_st"), 0u);
    // And the cycle ordering follows: no-fences < risotto < qemu.
    EXPECT_LT(nofences.makespan, risotto.makespan);
    EXPECT_LT(risotto.makespan, qemu.makespan);
}

} // namespace
