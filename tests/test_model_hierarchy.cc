/**
 * @file
 * Property tests on the relationships *between* the consistency models:
 * for any program, a stronger model's behaviours are a subset of a
 * weaker model's. Random-program sweeps assert
 *
 *     SC  ⊆  x86-TSO  ⊆  TCG IR,  Arm-Cats,  RVWMO
 *
 * plus corrected-Arm ⊆ original-Arm (the amo strengthening only removes
 * behaviours), and that every model's behaviour set is non-empty (some
 * execution is always consistent).
 */

#include <gtest/gtest.h>

#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "litmus/random.hh"
#include "models/model.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;

const models::ScModel kSc;
const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArmFixed(models::ArmModel::AmoRule::Corrected);
const models::ArmModel kArmOrig(models::ArmModel::AmoRule::Original);
const models::RiscvModel kRiscv;

bool
subsetOf(const BehaviorSet &small, const BehaviorSet &big)
{
    for (const Outcome &o : small)
        if (!big.count(o))
            return false;
    return true;
}

void
checkHierarchy(const Program &p)
{
    const BehaviorSet sc = enumerateBehaviors(p, kSc);
    const BehaviorSet x86 = enumerateBehaviors(p, kX86);
    const BehaviorSet tcg = enumerateBehaviors(p, kTcg);
    const BehaviorSet arm = enumerateBehaviors(p, kArmFixed);
    const BehaviorSet arm_orig = enumerateBehaviors(p, kArmOrig);
    const BehaviorSet rv = enumerateBehaviors(p, kRiscv);

    EXPECT_FALSE(sc.empty()) << p.toString();
    EXPECT_TRUE(subsetOf(sc, x86)) << "SC > x86:\n" << p.toString();
    EXPECT_TRUE(subsetOf(x86, tcg)) << "x86 > tcg:\n" << p.toString();
    EXPECT_TRUE(subsetOf(x86, arm)) << "x86 > arm:\n" << p.toString();
    EXPECT_TRUE(subsetOf(x86, rv)) << "x86 > rvwmo:\n" << p.toString();
    EXPECT_TRUE(subsetOf(arm, arm_orig))
        << "corrected > original:\n" << p.toString();
}

TEST(ModelHierarchy, HoldsOnTheCorpus)
{
    for (const LitmusTest &test : x86Corpus())
        checkHierarchy(test.program);
}

TEST(ModelHierarchy, HoldsOnRandomPlainPrograms)
{
    Rng rng(20261);
    RandomProgramOptions opts;
    opts.maxInstrsPerThread = 3;
    opts.fencePercent = 0; // Plain accesses only (fences are per-ISA).
    opts.rmwPercent = 20;
    for (int i = 0; i < 120; ++i)
        checkHierarchy(randomProgram(rng, opts));
}

TEST(ModelHierarchy, HoldsOnRandomFencedPrograms)
{
    // MFENCE exists in every model's vocabulary here: the x86 fence is
    // treated as a full fence by... only x86; others ignore unknown
    // fences, so use programs with MFENCE only for the SC/x86 pair.
    Rng rng(20262);
    RandomProgramOptions opts;
    opts.maxInstrsPerThread = 3;
    opts.fencePercent = 30;
    opts.rmwPercent = 15;
    for (int i = 0; i < 80; ++i) {
        const Program p = randomProgram(rng, opts);
        const BehaviorSet sc = enumerateBehaviors(p, kSc);
        const BehaviorSet x86 = enumerateBehaviors(p, kX86);
        EXPECT_TRUE(subsetOf(sc, x86)) << p.toString();
        EXPECT_FALSE(sc.empty());
    }
}

TEST(ModelHierarchy, StrictnessWitnesses)
{
    // The hierarchy is strict: known tests separate adjacent models.
    const LitmusTest sb_test = sb();
    EXPECT_FALSE(sb_test.interesting.existsIn(
        enumerateBehaviors(sb_test.program, kSc)));
    EXPECT_TRUE(sb_test.interesting.existsIn(
        enumerateBehaviors(sb_test.program, kX86))); // SC < x86.

    const LitmusTest mp_test = mp();
    EXPECT_FALSE(mp_test.interesting.existsIn(
        enumerateBehaviors(mp_test.program, kX86)));
    EXPECT_TRUE(mp_test.interesting.existsIn(
        enumerateBehaviors(mp_test.program, kArmFixed))); // x86 < arm.
    EXPECT_TRUE(mp_test.interesting.existsIn(
        enumerateBehaviors(mp_test.program, kRiscv))); // x86 < rvwmo.
}

} // namespace
