/**
 * @file
 * Regression tests pinning the Figure 10 side conditions of the memory
 * eliminations and the fence-merge commutation rules -- exactly the
 * preconditions under which the paper's Agda development verifies the
 * transformations. Each test builds IR directly so a future refactor
 * cannot silently widen a side condition.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "memcore/fencealg.hh"
#include "tcg/optimizer.hh"

namespace
{

using namespace risotto;
using memcore::FenceKind;
using tcg::Block;
using tcg::Op;
namespace build = tcg::build;

std::size_t
countOp(const Block &block, Op op)
{
    return static_cast<std::size_t>(
        std::count_if(block.instrs.begin(), block.instrs.end(),
                      [op](const tcg::Instr &i) { return i.op == op; }));
}

/** ld t; [fence] ld u -- same base and offset. */
Block
rarBlock(FenceKind between)
{
    Block b;
    const tcg::TempId t = b.newTemp();
    const tcg::TempId u = b.newTemp();
    b.instrs.push_back(build::ld(t, 0, 8));
    if (between != FenceKind::None)
        b.instrs.push_back(build::mb(between));
    b.instrs.push_back(build::ld(u, 0, 8));
    return b;
}

/** st v; [fence] ld t -- same base and offset. */
Block
rawBlock(FenceKind between)
{
    Block b;
    const tcg::TempId t = b.newTemp();
    b.instrs.push_back(build::st(1, 0, 8));
    if (between != FenceKind::None)
        b.instrs.push_back(build::mb(between));
    b.instrs.push_back(build::ld(t, 0, 8));
    return b;
}

/** st v; [fence] st w -- same base and offset. */
Block
wawBlock(FenceKind between)
{
    Block b;
    b.instrs.push_back(build::st(1, 0, 8));
    if (between != FenceKind::None)
        b.instrs.push_back(build::mb(between));
    b.instrs.push_back(build::st(2, 0, 8));
    return b;
}

// --- Figure 10: which fences an elimination may cross -----------------------

TEST(MemoryElimGuards, RarCrossesFrmAndFwwOnly)
{
    for (FenceKind f : {FenceKind::None, FenceKind::Frm, FenceKind::Fww}) {
        Block b = rarBlock(f);
        EXPECT_EQ(tcg::passMemoryElim(b), 1u) << static_cast<int>(f);
        EXPECT_EQ(countOp(b, Op::Ld), 1u);
    }
    // An Fsc between the loads is load-ordering-relevant: eliminating
    // the second load would let it "execute" before the barrier.
    Block b = rarBlock(FenceKind::Fsc);
    EXPECT_EQ(tcg::passMemoryElim(b), 0u);
    EXPECT_EQ(countOp(b, Op::Ld), 2u);
}

TEST(MemoryElimGuards, RawCrossesFscAndFwwOnly)
{
    for (FenceKind f : {FenceKind::None, FenceKind::Fsc, FenceKind::Fww}) {
        Block b = rawBlock(f);
        EXPECT_EQ(tcg::passMemoryElim(b), 1u) << static_cast<int>(f);
        EXPECT_EQ(countOp(b, Op::Ld), 0u);
    }
    // Frm between store and load orders the (eliminated) read against
    // later accesses; forwarding across it is unsound.
    Block b = rawBlock(FenceKind::Frm);
    EXPECT_EQ(tcg::passMemoryElim(b), 0u);
    EXPECT_EQ(countOp(b, Op::Ld), 1u);
}

TEST(MemoryElimGuards, WawCrossesFrmAndFwwOnlyAndKeepsTheLaterStore)
{
    for (FenceKind f : {FenceKind::None, FenceKind::Frm, FenceKind::Fww}) {
        Block b = wawBlock(f);
        EXPECT_EQ(tcg::passMemoryElim(b), 1u) << static_cast<int>(f);
        ASSERT_EQ(countOp(b, Op::St), 1u);
        // The surviving store is the later one (value temp 2).
        const auto it = std::find_if(
            b.instrs.begin(), b.instrs.end(),
            [](const tcg::Instr &i) { return i.op == Op::St; });
        EXPECT_EQ(it->a, 2);
    }
    Block b = wawBlock(FenceKind::Fsc);
    EXPECT_EQ(tcg::passMemoryElim(b), 0u);
    EXPECT_EQ(countOp(b, Op::St), 2u);
}

TEST(MemoryElimGuards, FacqFrelAreTransparent)
{
    // Facq/Frel order nothing by themselves (Figure 6): they never block
    // an elimination.
    for (FenceKind f : {FenceKind::Facq, FenceKind::Frel}) {
        Block b = rarBlock(f);
        EXPECT_EQ(tcg::passMemoryElim(b), 1u) << static_cast<int>(f);
    }
}

// --- No elimination across atomics, helpers or control flow -----------------

TEST(MemoryElimGuards, NeverCrossesRmwOps)
{
    {
        Block b;
        const tcg::TempId t = b.newTemp();
        const tcg::TempId u = b.newTemp();
        const tcg::TempId old = b.newTemp();
        b.instrs.push_back(build::ld(t, 0, 8));
        b.instrs.push_back(build::cas(old, 1, 0, 2, 3));
        b.instrs.push_back(build::ld(u, 0, 8));
        EXPECT_EQ(tcg::passMemoryElim(b), 0u);
        EXPECT_EQ(countOp(b, Op::Ld), 2u);
    }
    {
        Block b;
        const tcg::TempId old = b.newTemp();
        b.instrs.push_back(build::st(1, 0, 8));
        b.instrs.push_back(build::xadd(old, 2, 0, 3));
        b.instrs.push_back(build::st(4, 0, 8));
        EXPECT_EQ(tcg::passMemoryElim(b), 0u);
        EXPECT_EQ(countOp(b, Op::St), 2u);
    }
}

TEST(MemoryElimGuards, NeverCrossesHelperCalls)
{
    Block b;
    const tcg::TempId t = b.newTemp();
    const tcg::TempId u = b.newTemp();
    b.instrs.push_back(build::ld(t, 0, 8));
    b.instrs.push_back(
        build::callHelper(tcg::HelperId::CasHelper, 5, 6, 7));
    b.instrs.push_back(build::ld(u, 0, 8));
    EXPECT_EQ(tcg::passMemoryElim(b), 0u);
}

TEST(MemoryElimGuards, NeverPairsAcrossLabelsOrBranches)
{
    {
        Block b;
        const tcg::TempId t = b.newTemp();
        const tcg::TempId u = b.newTemp();
        const std::int32_t l = b.newLabel();
        b.instrs.push_back(build::ld(t, 0, 8));
        b.instrs.push_back(build::setLabel(l));
        b.instrs.push_back(build::ld(u, 0, 8));
        EXPECT_EQ(tcg::passMemoryElim(b), 0u);
    }
    {
        Block b;
        const std::int32_t l = b.newLabel();
        b.instrs.push_back(build::st(1, 0, 8));
        b.instrs.push_back(build::brcond(gx86::Cond::Eq, 2, 3, l));
        b.instrs.push_back(build::st(4, 0, 8));
        b.instrs.push_back(build::setLabel(l));
        EXPECT_EQ(tcg::passMemoryElim(b), 0u);
        EXPECT_EQ(countOp(b, Op::St), 2u);
    }
}

TEST(MemoryElimGuards, VocabularyPreconditionDisablesThePass)
{
    // A QEMU-scheme fence anywhere in the block (here Fmr) voids the
    // verified precondition; even an unrelated adjacent RAR pair must
    // survive (the FMR counterexample of Section 5.4).
    Block b = rarBlock(FenceKind::None);
    b.instrs.push_back(build::mb(FenceKind::Fmr));
    EXPECT_EQ(tcg::passMemoryElim(b), 0u);
    EXPECT_EQ(countOp(b, Op::Ld), 2u);
}

// --- Fence merging ----------------------------------------------------------

TEST(FenceMergeGuards, MergesAcrossPureOpsAtTheEarlierPosition)
{
    Block b;
    const tcg::TempId t = b.newTemp();
    b.instrs.push_back(build::mb(FenceKind::Frm));
    b.instrs.push_back(build::addi(t, 1, 4));
    b.instrs.push_back(build::mb(FenceKind::Fww));
    EXPECT_EQ(tcg::passFenceMerge(b), 1u);
    ASSERT_EQ(countOp(b, Op::Mb), 1u);
    // The merged fence sits at the earlier position and covers both.
    ASSERT_EQ(b.instrs.front().op, Op::Mb);
    EXPECT_EQ(b.instrs.front().fence,
              memcore::mergeFences(FenceKind::Frm, FenceKind::Fww));
}

TEST(FenceMergeGuards, NeverMergesAcrossMemoryOps)
{
    Block b;
    const tcg::TempId t = b.newTemp();
    b.instrs.push_back(build::mb(FenceKind::Frm));
    b.instrs.push_back(build::ld(t, 0, 8));
    b.instrs.push_back(build::mb(FenceKind::Fww));
    EXPECT_EQ(tcg::passFenceMerge(b), 0u);
    EXPECT_EQ(countOp(b, Op::Mb), 2u);
}

TEST(FenceMergeGuards, NeverMergesAcrossControlFlow)
{
    Block b;
    const std::int32_t l = b.newLabel();
    b.instrs.push_back(build::mb(FenceKind::Frm));
    b.instrs.push_back(build::setLabel(l));
    b.instrs.push_back(build::mb(FenceKind::Fww));
    EXPECT_EQ(tcg::passFenceMerge(b), 0u);
    EXPECT_EQ(countOp(b, Op::Mb), 2u);
}

// --- Superblock granularity -------------------------------------------------

TEST(SuperblockGuards, EliminationRespectsSeamLabels)
{
    // Two straight-line segments joined by a seam label (the shape the
    // splicer produces): the in-segment WAW pair is eliminated, the
    // cross-seam pair is not.
    Block b;
    const std::int32_t seam = b.newLabel();
    b.instrs.push_back(build::st(1, 0, 8));  // |
    b.instrs.push_back(build::st(2, 0, 8));  // | in-segment WAW
    b.instrs.push_back(build::st(3, 0, 16)); // straddles the seam
    b.instrs.push_back(build::setLabel(seam));
    b.instrs.push_back(build::st(4, 0, 16));

    tcg::OptimizerConfig config; // Everything on, as tier 2 runs it.
    const auto result = tcg::optimizeSuperblock(b, config);
    EXPECT_EQ(result.memOpsEliminated, 1u);
    EXPECT_EQ(countOp(b, Op::St), 3u);
}

TEST(SuperblockGuards, FenceMergeRespectsSeamLabels)
{
    Block b;
    const std::int32_t seam = b.newLabel();
    b.instrs.push_back(build::mb(FenceKind::Fww));
    b.instrs.push_back(build::mb(FenceKind::Frm)); // Merges up.
    b.instrs.push_back(build::setLabel(seam));
    b.instrs.push_back(build::mb(FenceKind::Fww)); // Stays: join point.

    tcg::OptimizerConfig config;
    config.constantFolding = false;
    config.memoryElimination = false;
    config.deadCodeElimination = false;
    const auto result = tcg::optimizeSuperblock(b, config);
    EXPECT_EQ(result.fencesRemoved, 1u);
    EXPECT_EQ(countOp(b, Op::Mb), 2u);
}

} // namespace
