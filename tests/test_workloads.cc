/**
 * @file
 * Workload-proxy tests: every Figure 12 workload builds, runs to
 * completion under every DBT variant with identical results (differential
 * vs the reference interpreter single-threaded), the native twin
 * terminates, and the variant cycle ordering the figure relies on holds.
 */

#include <gtest/gtest.h>

#include "dbt/dbt.hh"
#include "gx86/interp.hh"
#include "machine/machine.hh"
#include "support/error.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;
using workloads::WorkloadSpec;

class WorkloadSuite : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(WorkloadSuite, SingleThreadMatchesInterpreter)
{
    WorkloadSpec spec = GetParam();
    spec.iterations = 50; // Keep the differential run quick.
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

    gx86::Interpreter interp(image);
    const auto expected = interp.run();

    for (const DbtConfig &config :
         {DbtConfig::qemu(), DbtConfig::qemuNoFences(),
          DbtConfig::tcgVer(), DbtConfig::risotto()}) {
        Dbt engine(image, config);
        const auto result = engine.run({ThreadSpec{}});
        ASSERT_TRUE(result.finished) << spec.name << "/" << config.name;
        EXPECT_EQ(result.exitCodes[0], expected.exitCode)
            << spec.name << "/" << config.name;
    }
}

TEST_P(WorkloadSuite, VariantCycleOrderingHolds)
{
    WorkloadSpec spec = GetParam();
    spec.iterations = 200;
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

    auto makespan = [&](const DbtConfig &config) {
        Dbt engine(image, config);
        std::vector<ThreadSpec> threads(2);
        threads[1].regs[0] = 1;
        const auto result = engine.run(threads);
        EXPECT_TRUE(result.finished) << spec.name;
        return result.makespan;
    };
    const std::uint64_t qemu = makespan(DbtConfig::qemu());
    const std::uint64_t nofences = makespan(DbtConfig::qemuNoFences());
    const std::uint64_t tcgver = makespan(DbtConfig::tcgVer());

    // Figure 12's invariant: no-fences <= tcg-ver <= qemu.
    EXPECT_LE(nofences, tcgver) << spec.name;
    EXPECT_LE(tcgver, qemu) << spec.name;
    // Memory-traffic workloads must actually pay for fences.
    if (spec.loads + spec.stores >= 4) {
        EXPECT_LT(nofences, qemu) << spec.name;
    }
}

TEST_P(WorkloadSuite, NativeTwinTerminatesAndIsFastest)
{
    WorkloadSpec spec = GetParam();
    spec.iterations = 200;

    aarch::CodeBuffer code;
    const aarch::CodeAddr entry = workloads::emitNativeWorkload(spec, code);
    gx86::Memory memory;
    machine::Machine machine(code, memory, {});
    for (int t = 0; t < 2; ++t) {
        const std::size_t idx = machine.addCore(entry);
        machine.core(idx).x[0] = static_cast<std::uint64_t>(t);
    }
    ASSERT_TRUE(machine.run()) << spec.name;
    const std::uint64_t native = machine.makespan();

    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);
    Dbt engine(image, DbtConfig::qemuNoFences());
    std::vector<ThreadSpec> threads(2);
    threads[1].regs[0] = 1;
    const auto translated = engine.run(threads);
    ASSERT_TRUE(translated.finished);
    EXPECT_LT(native, translated.makespan) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::ValuesIn(workloads::fullSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(workloads::workloadByName("freqmine").suite, "parsec");
    EXPECT_EQ(workloads::workloadByName("wordcount").suite, "phoenix");
    EXPECT_THROW(workloads::workloadByName("doom"), FatalError);
    EXPECT_EQ(workloads::fullSuite().size(), 16u);
}

} // namespace
