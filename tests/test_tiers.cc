/**
 * @file
 * Tiered-execution tests: TranslationCache and ChainManager units, the
 * superblock promotion pipeline (formation, cross-block optimization
 * wins, profile-driven region choice), and the differential properties
 * the tier split must preserve -- guest-visible results identical with
 * tier 2 on and off, across every workload proxy, with fault injection
 * armed, under litmus stress, and across translation-cache flush epochs
 * (a superblock formed just before a flush must not leave a stale chain
 * patch behind).
 */

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "aarch/emitter.hh"
#include "aarch/isa.hh"
#include "dbt/chain.hh"
#include "dbt/dbt.hh"
#include "dbt/tbcache.hh"
#include "gx86/assembler.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "machine/machine.hh"
#include "models/model.hh"
#include "risotto/stress.hh"
#include "support/error.hh"
#include "support/faultinject.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;
using dbt::ChainManager;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;
using dbt::Tier;
using dbt::TranslationCache;
using workloads::WorkloadSpec;

const models::X86Model kX86;

// --- TranslationCache units -------------------------------------------------

TEST(TranslationCacheUnit, InsertFindAndProfile)
{
    TranslationCache cache;
    EXPECT_EQ(cache.find(0x100), nullptr);
    EXPECT_EQ(cache.noteExecution(0x100), 0u); // Uncached: no profile.

    cache.insert(0x100, 7, 12, Tier::Baseline);
    const dbt::TbInfo *tb = cache.find(0x100);
    ASSERT_NE(tb, nullptr);
    EXPECT_EQ(tb->entry, 7u);
    EXPECT_EQ(tb->hostWords, 12u);
    EXPECT_EQ(tb->tier, Tier::Baseline);

    EXPECT_EQ(cache.noteExecution(0x100), 1u);
    EXPECT_EQ(cache.noteExecution(0x100), 2u);

    // Re-inserting (retranslation) swaps the code but keeps the
    // block's execution profile: a retranslated hot block must not be
    // silently demoted below the tier-2 threshold.
    cache.recordSuccessor(0x100, 0x200);
    cache.find(0x100)->promotionFailed = true;
    cache.insert(0x100, 9, 10, Tier::Baseline);
    const dbt::TbInfo *re = cache.find(0x100);
    EXPECT_EQ(re->entry, 9u);
    EXPECT_EQ(re->hostWords, 10u);
    EXPECT_EQ(re->execCount, 2u);
    ASSERT_EQ(re->successors.size(), 1u);
    EXPECT_EQ(re->successors[0].first, 0x200u);
    // ...but a failed-promotion mark is cleared: the new translation
    // deserves a fresh tier-2 attempt.
    EXPECT_FALSE(re->promotionFailed);
}

// --- Jump-cache coherence ---------------------------------------------------

TEST(JumpCacheUnit, RepeatLookupsHitTheDirectMappedCache)
{
    TranslationCache cache;
    cache.insert(0x100, 7, 12, Tier::Baseline);
    // insert() pre-fills the jump cache, so the first find already hits.
    const std::uint64_t misses0 = cache.jumpCacheMisses();
    dbt::TbInfo *first = cache.find(0x100);
    ASSERT_NE(first, nullptr);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(cache.find(0x100), first);
    EXPECT_EQ(cache.jumpCacheMisses(), misses0);
    EXPECT_GE(cache.jumpCacheHits(), 101u);

    // A miss falls back to the map and refills the cached slot.
    cache.insert(0x200, 9, 4, Tier::Baseline);
    EXPECT_NE(cache.find(0x200), nullptr);
    EXPECT_EQ(cache.find(0x1234), nullptr); // Absent: always a miss.
}

TEST(JumpCacheUnit, FlushInvalidatesEveryCachedEntry)
{
    TranslationCache cache;
    for (gx86::Addr pc = 0x1000; pc < 0x1400; pc += 0x10)
        cache.insert(pc, pc + 1, 8, Tier::Baseline);
    for (gx86::Addr pc = 0x1000; pc < 0x1400; pc += 0x10)
        ASSERT_NE(cache.find(pc), nullptr); // Warm the jump cache.

    const std::uint64_t gen = cache.generation();
    cache.flush();
    EXPECT_EQ(cache.generation(), gen + 1);
    EXPECT_EQ(cache.size(), 0u);
    // No stale TbInfo may survive the flush epoch: every lookup must
    // now report "untranslated", never a dangling pointer.
    for (gx86::Addr pc = 0x1000; pc < 0x1400; pc += 0x10)
        EXPECT_EQ(cache.find(pc), nullptr);

    // Re-translation after the flush starts a fresh profile and the
    // jump cache serves the new entry, not the old one.
    cache.insert(0x1000, 99, 8, Tier::Baseline);
    const dbt::TbInfo *tb = cache.find(0x1000);
    ASSERT_NE(tb, nullptr);
    EXPECT_EQ(tb->entry, 99u);
    EXPECT_EQ(tb->execCount, 0u);
}

TEST(JumpCacheUnit, PromotionUpdatesCachedPointerInPlace)
{
    TranslationCache cache;
    cache.insert(0x100, 7, 12, Tier::Baseline);
    dbt::TbInfo *cached = cache.find(0x100); // Now in the jump cache.
    cache.noteExecution(0x100);

    // Tier-2 promotion mutates the TbInfo in place, so a previously
    // cached pointer observes the new translation without any
    // invalidation protocol.
    cache.promote(0x100, 40, 30, Tier::Superblock);
    dbt::TbInfo *after = cache.find(0x100);
    EXPECT_EQ(after, cached);
    EXPECT_EQ(after->entry, 40u);
    EXPECT_EQ(after->tier, Tier::Superblock);
    EXPECT_EQ(after->execCount, 1u);
}

TEST(JumpCacheUnit, CollidingAddressesStayCorrect)
{
    TranslationCache cache;
    // 0x100 and 0x100 + (1<<10 words apart) may map to related slots;
    // whatever the hash does, eviction must never serve the wrong TB.
    const gx86::Addr a = 0x100;
    const gx86::Addr b = 0x100 + (1ull << 10);
    const gx86::Addr c = 0x100 + (1ull << 20);
    cache.insert(a, 1, 4, Tier::Baseline);
    cache.insert(b, 2, 4, Tier::Baseline);
    cache.insert(c, 3, 4, Tier::Baseline);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(cache.find(a)->entry, 1u);
        EXPECT_EQ(cache.find(b)->entry, 2u);
        EXPECT_EQ(cache.find(c)->entry, 3u);
    }
}

TEST(TranslationCacheUnit, PromoteKeepsProfileAndSwapsTier)
{
    TranslationCache cache;
    cache.insert(0x100, 7, 12, Tier::Baseline);
    cache.noteExecution(0x100);
    cache.noteExecution(0x100);
    cache.find(0x100)->promotionFailed = true;

    cache.promote(0x100, 40, 30, Tier::Superblock);
    const dbt::TbInfo *tb = cache.find(0x100);
    EXPECT_EQ(tb->entry, 40u);
    EXPECT_EQ(tb->tier, Tier::Superblock);
    EXPECT_EQ(tb->execCount, 2u); // Profile survives promotion.
    EXPECT_FALSE(tb->promotionFailed);

    EXPECT_THROW(cache.promote(0x200, 1, 1, Tier::Superblock),
                 PanicError);
}

TEST(TranslationCacheUnit, HotPathFollowsHottestSuccessorAndClosesLoops)
{
    TranslationCache cache;
    for (const gx86::Addr pc : {0x10, 0x20, 0x30})
        cache.insert(pc, 0, 0, Tier::Baseline);
    // 0x10 -> 0x20 (3 times) and 0x10 -> 0x30 (once).
    cache.recordSuccessor(0x10, 0x20);
    cache.recordSuccessor(0x10, 0x20);
    cache.recordSuccessor(0x10, 0x20);
    cache.recordSuccessor(0x10, 0x30);
    // 0x20 -> 0x10 closes the loop.
    cache.recordSuccessor(0x20, 0x10);

    const auto path = cache.hotPath(0x10, 8);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0x10u);
    EXPECT_EQ(path[1], 0x20u);

    // max_blocks caps the region.
    EXPECT_EQ(cache.hotPath(0x10, 1).size(), 1u);
}

TEST(TranslationCacheUnit, HottestRanksByExecCount)
{
    TranslationCache cache;
    cache.insert(0x10, 0, 0, Tier::Baseline);
    cache.insert(0x20, 0, 0, Tier::Superblock);
    cache.insert(0x30, 0, 0, Tier::Baseline);
    for (int i = 0; i < 5; ++i)
        cache.noteExecution(0x20);
    cache.noteExecution(0x30);

    const auto hot = cache.hottest(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].guestPc, 0x20u);
    EXPECT_EQ(hot[0].execCount, 5u);
    EXPECT_EQ(hot[0].tier, Tier::Superblock);
    EXPECT_EQ(hot[1].guestPc, 0x30u);

    EXPECT_EQ(cache.hottest(10).size(), 3u);
}

TEST(TranslationCacheUnit, FlushClearsEntriesAndBumpsGeneration)
{
    TranslationCache cache;
    cache.insert(0x10, 0, 0, Tier::Baseline);
    EXPECT_EQ(cache.generation(), 0u);
    cache.flush();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find(0x10), nullptr);
    EXPECT_EQ(cache.generation(), 1u);
}

TEST(TierNames, RenderAllTiers)
{
    EXPECT_EQ(dbt::tierName(Tier::Interpreter), "interp");
    EXPECT_EQ(dbt::tierName(Tier::Baseline), "tier1");
    EXPECT_EQ(dbt::tierName(Tier::Superblock), "tier2");
}

// --- ChainManager units -----------------------------------------------------

TEST(ChainManagerUnit, SlotsEpochsAndPatching)
{
    aarch::CodeBuffer code;
    ChainManager chains(code);

    aarch::Emitter em(code);
    const aarch::CodeAddr site = em.here();
    em.exitTb(chains.staticSlot(0x40, 0x50, site, true));
    em.finish();
    const std::uint32_t exit_word = code.fetch(site);

    EXPECT_EQ(chains.slotCount(), 1u);
    EXPECT_EQ(chains.slot(0).sourcePc, 0x40u);
    EXPECT_EQ(chains.slot(0).guestPc, 0x50u);
    EXPECT_TRUE(chains.slot(0).chainable);

    // The shared dynamic slot is memoized.
    const std::uint32_t dyn = chains.dynamicSlot();
    EXPECT_EQ(chains.dynamicSlot(), dyn);
    EXPECT_EQ(chains.slotCount(), 2u);

    // Chaining rewrites the exit word into a relative branch.
    chains.chain(0, site + 5);
    EXPECT_NE(code.fetch(site), exit_word);
    aarch::AInstr branch;
    branch.op = aarch::AOp::B;
    branch.imm = 5;
    EXPECT_EQ(code.fetch(site), aarch::encode(branch));

    // Dynamic slots are not chainable.
    EXPECT_THROW(chains.chain(dyn, 0), PanicError);
    EXPECT_THROW(chains.slot(99), PanicError);

    // A flush discards every slot and starts a new epoch.
    EXPECT_EQ(chains.epoch(), 0u);
    chains.flush();
    EXPECT_EQ(chains.epoch(), 1u);
    EXPECT_EQ(chains.slotCount(), 0u);

    chains.staticSlot(0, 0x60, 0, false);
    chains.truncateSlots(0);
    EXPECT_EQ(chains.slotCount(), 0u);
    EXPECT_THROW(chains.truncateSlots(3), PanicError);
}

// --- Superblock formation ---------------------------------------------------

/**
 * A loop whose 80-store body overflows the frontend's 64-instruction
 * block cap: the seam hides one same-address store pair (and its Fww)
 * from per-block optimization. See bench/tab_superblock_ablation.cc.
 */
gx86::GuestImage
fencedSeamLoop(std::int64_t iterations)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(4, 7);
    a.movri(2, iterations);
    const auto loop = a.newLabel();
    a.bind(loop);
    for (int k = 0; k < 80; ++k)
        a.store(3, 0, 4);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

void
expectSameGuestState(const dbt::RunResult &expected,
                     const dbt::RunResult &result, const std::string &tag)
{
    ASSERT_TRUE(result.finished)
        << tag << ": " << machine::runDiagnosisName(result.diagnosis);
    EXPECT_EQ(result.exitCodes, expected.exitCodes) << tag;
    EXPECT_EQ(result.outputs, expected.outputs) << tag;
    ASSERT_EQ(result.memory->size(), expected.memory->size()) << tag;
    EXPECT_EQ(std::memcmp(result.memory->raw(0, result.memory->size()),
                          expected.memory->raw(0, expected.memory->size()),
                          result.memory->size()),
              0)
        << tag << ": final guest memory diverged";
}

TEST(SuperblockFormation, HotSeamLoopPromotesAndWins)
{
    const gx86::GuestImage image = fencedSeamLoop(400);

    DbtConfig off = DbtConfig::risotto();
    off.tier2 = false;
    Dbt tier1(image, off);
    const auto base = tier1.run({ThreadSpec{}});
    ASSERT_TRUE(base.finished);
    EXPECT_EQ(base.tier2Superblocks, 0u);

    DbtConfig on = DbtConfig::risotto();
    Dbt tiered(image, on);
    const auto result = tiered.run({ThreadSpec{}});
    expectSameGuestState(base, result, "seam-loop");

    // A superblock subsuming both halves of the split body formed, the
    // cross-block optimizer removed the seam's store and fence, and the
    // run got faster.
    EXPECT_GE(result.tier2Superblocks, 1u);
    EXPECT_GE(result.tier2BlocksSubsumed, 2u);
    EXPECT_GE(result.crossBlockFencesRemoved, 1u);
    EXPECT_GE(result.crossBlockMemOpsEliminated, 1u);
    EXPECT_LT(result.makespan, base.makespan);
    EXPECT_LT(result.stats.get("machine.dmb_st"),
              base.stats.get("machine.dmb_st"));

    // The head of the hot region is reported at tier 2.
    bool saw_tier2 = false;
    for (const auto &h : tiered.cache().hottest(8))
        saw_tier2 = saw_tier2 || h.tier == Tier::Superblock;
    EXPECT_TRUE(saw_tier2);
}

TEST(SuperblockFormation, ThresholdZeroAndFlagDisableTier2)
{
    const gx86::GuestImage image = fencedSeamLoop(200);
    for (const bool use_flag : {true, false}) {
        DbtConfig config = DbtConfig::risotto();
        if (use_flag)
            config.tier2 = false;
        else
            config.tier2Threshold = 0;
        Dbt engine(image, config);
        const auto result = engine.run({ThreadSpec{}});
        ASSERT_TRUE(result.finished);
        EXPECT_EQ(result.tier2Superblocks, 0u);
        EXPECT_EQ(result.stats.get("dbt.tier2_attempts"), 0u);
    }
}

// --- Differential properties ------------------------------------------------

TEST(TierDifferential, AllWorkloadsMatchWithTier2OnAndOff)
{
    // Every workload proxy must produce identical guest-visible results
    // with tier 2 off, on, and on-with-faults-armed. Region formation is
    // deliberately conservative (straight-line hot paths only; loop
    // bodies ending in conditional branches abandon the splice), so the
    // sweep demands the promotion machinery *engaged* on every workload
    // shape rather than that it succeeded -- formation wins are covered
    // by the seam-loop tests above.
    std::uint64_t attempts = 0;
    std::uint64_t plan_seed = 0x71e2;
    for (WorkloadSpec spec : workloads::fullSuite()) {
        spec.iterations = 100;
        const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

        DbtConfig off = DbtConfig::risotto();
        off.tier2 = false;
        DbtConfig on = DbtConfig::risotto();
        on.tier2Threshold = 4; // Promote eagerly: short test loops.
        DbtConfig on_faulty = on;
        on_faulty.faults = FaultPlan::allSites(++plan_seed, 0.1);

        std::vector<ThreadSpec> threads(2);
        threads[1].regs[0] = 1;

        Dbt reference(image, off);
        const auto expected = reference.run(threads);
        ASSERT_TRUE(expected.finished) << spec.name;

        Dbt tiered(image, on);
        const auto result = tiered.run(threads);
        expectSameGuestState(expected, result, spec.name + "/tier2");
        attempts += result.stats.get("dbt.tier2_attempts");

        Dbt faulted(image, on_faulty);
        const auto faulty_result = faulted.run(threads);
        expectSameGuestState(expected, faulty_result,
                             spec.name + "/tier2+faults");
    }
    EXPECT_GT(attempts, 0u);
}

TEST(TierDifferential, StressRunnerStaysSoundWithEagerPromotion)
{
    // Litmus stress with an eager promotion threshold: every observed
    // outcome must remain inside the x86 axiomatic behaviours, exactly
    // as without tier 2.
    DbtConfig config = DbtConfig::risotto();
    config.tier2Threshold = 2;
    for (const litmus::LitmusTest &test :
         {litmus::mp(), litmus::sb(), litmus::sbal()}) {
        litmus::BehaviorSet x86_behaviors;
        for (const litmus::Outcome &o :
             litmus::enumerateBehaviors(test.program, kX86))
            x86_behaviors.insert(normalizeOutcome(test.program, o));

        const auto stress = runStress(test.program, config, 150);
        EXPECT_EQ(stress.unfinished, 0u) << test.program.name;
        EXPECT_GT(stress.runs(), 0u) << test.program.name;
        for (const auto &[outcome, count] : stress.histogram) {
            const litmus::Outcome norm =
                normalizeOutcome(test.program, outcome);
            EXPECT_TRUE(x86_behaviors.count(norm))
                << test.program.name
                << ": tiered run leaked non-x86 outcome "
                << norm.toString();
        }
    }
}

TEST(TierDifferential, PromotionSurvivesCacheFlushEpochs)
{
    // A code buffer just big enough to form superblocks but too small
    // for the whole working set: promotions and flush epochs interleave,
    // and any chain patch whose slot died in a flush (including the
    // patch deferred for the freshly promoted superblock itself) must
    // not be written into recycled code. Guest results stay identical
    // to an unbounded run; at least one capacity in the sweep must
    // exhibit both a superblock and a flush to prove the interleaving
    // actually happened.
    const gx86::GuestImage image = fencedSeamLoop(300);
    DbtConfig clean = DbtConfig::risotto();
    Dbt reference(image, clean);
    const auto expected = reference.run({ThreadSpec{}});
    ASSERT_TRUE(expected.finished);

    bool saw_interleaving = false;
    for (const std::size_t capacity :
         {36u, 40u, 44u, 48u, 52u, 56u, 60u, 64u, 72u, 80u, 96u}) {
        DbtConfig config = DbtConfig::risotto();
        config.tier2Threshold = 4;
        config.codeBufferCapacity = capacity;
        Dbt engine(image, config);
        const auto result = engine.run({ThreadSpec{}});
        expectSameGuestState(expected, result,
                             "capacity=" + std::to_string(capacity));
        if (result.stats.get("dbt.tb_flushes") > 0 &&
            result.tier2Superblocks > 0)
            saw_interleaving = true;
    }
    EXPECT_TRUE(saw_interleaving)
        << "no capacity produced both a flush and a superblock; "
           "tune the sweep";
}

} // namespace
