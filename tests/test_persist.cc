/**
 * @file
 * Persistent translation cache tests: RTBC round-trips, warm starts
 * that translate nothing cold, corruption sweeps (truncation, bit
 * flips, header surgery), snapshot keying, the validator gate against
 * tampered-but-well-checksummed records, and loader fault injection.
 * The invariant under test throughout: a damaged or mismatched
 * snapshot degrades blocks to cold translation, never to wrong code
 * and never to a crash.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aarch/isa.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "persist/fingerprint.hh"
#include "persist/snapshot.hh"
#include "support/checksum.hh"
#include "support/faultinject.hh"

namespace
{

using namespace risotto;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

/** A few-block guest: a load/store loop plus straight-line pre/post
 * blocks, enough to populate a snapshot with memory-ordering
 * obligations the validator can check. */
gx86::GuestImage
sampleGuest()
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(128);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(1, 0);
    a.movri(2, 40);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.load(4, 3, 0);
    a.add(1, 4);
    a.store(3, 8, 1);
    a.addi(1, 3);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

std::vector<ThreadSpec>
twoThreads()
{
    std::vector<ThreadSpec> threads(2);
    threads[1].regs[0] = 1;
    return threads;
}

bool
sameGuestBehaviour(const dbt::RunResult &a, const dbt::RunResult &b)
{
    return a.finished == b.finished && a.exitCodes == b.exitCodes &&
           a.outputs == b.outputs;
}

/** Cold reference: run the guest once and keep result + snapshot. */
struct ColdReference
{
    gx86::GuestImage image = sampleGuest();
    DbtConfig config = DbtConfig::risotto();
    dbt::RunResult result;
    persist::Snapshot snapshot;
    std::vector<std::uint8_t> bytes;

    ColdReference()
    {
        Dbt engine(image, config);
        result = engine.run(twoThreads());
        snapshot = engine.exportSnapshot();
        bytes = persist::serialize(snapshot);
    }
};

/** Parse + import @p bytes into a fresh engine, run it, and require
 * guest behaviour identical to the cold reference. */
void
expectGracefulBehaviour(const ColdReference &ref,
                        const std::vector<std::uint8_t> &bytes)
{
    persist::ParseReport report;
    const persist::Snapshot snap = persist::parse(bytes, report);
    Dbt engine(ref.image, ref.config);
    engine.importSnapshot(snap, true);
    const auto result = engine.run(twoThreads());
    EXPECT_TRUE(sameGuestBehaviour(ref.result, result));
}

TEST(Persist, ExportIsDeterministic)
{
    const gx86::GuestImage image = sampleGuest();
    Dbt engine(image, DbtConfig::risotto());
    engine.run(twoThreads());
    const auto first = persist::serialize(engine.exportSnapshot());
    const auto second = persist::serialize(engine.exportSnapshot());
    EXPECT_EQ(first, second);
}

TEST(Persist, ParseRoundTripsByteIdentically)
{
    const ColdReference ref;
    ASSERT_FALSE(ref.snapshot.records.empty());

    persist::ParseReport report;
    const persist::Snapshot reparsed = persist::parse(ref.bytes, report);
    EXPECT_TRUE(report.headerOk);
    EXPECT_EQ(report.version, persist::FormatVersion);
    EXPECT_EQ(report.recordsLoaded, ref.snapshot.records.size());
    EXPECT_EQ(report.recordsBadChecksum, 0u);
    EXPECT_EQ(report.recordsBadBounds, 0u);
    EXPECT_EQ(reparsed.records.size(), ref.snapshot.records.size());
    EXPECT_EQ(reparsed.provenance, ref.snapshot.provenance);
    EXPECT_EQ(persist::serialize(reparsed), ref.bytes);
}

TEST(Persist, WarmStartTranslatesNothingCold)
{
    const ColdReference ref;
    const std::string path = testing::TempDir() + "/warmstart.rtbc";
    {
        Dbt saver(ref.image, ref.config);
        saver.run(twoThreads());
        ASSERT_TRUE(saver.savePersistentCache(path));
    }
    Dbt warm(ref.image, ref.config);
    const auto report = warm.loadPersistentCache(path);
    EXPECT_TRUE(report.applied);
    EXPECT_EQ(report.loaded, ref.snapshot.records.size());
    EXPECT_EQ(report.rejected, 0u);

    const auto result = warm.run(twoThreads());
    EXPECT_TRUE(sameGuestBehaviour(ref.result, result));
    // The whole point of the warm start: every block came from the
    // snapshot, none from the translator.
    EXPECT_EQ(warm.stats().get("dbt.tbs_translated"), 0u);
    EXPECT_EQ(warm.stats().get("persist.tb_loaded"),
              ref.snapshot.records.size());
}

TEST(Persist, TruncationNeverThrowsAndStaysCorrect)
{
    const ColdReference ref;
    for (std::size_t len = 0; len < ref.bytes.size();
         len += 1 + ref.bytes.size() / 37) {
        std::vector<std::uint8_t> cut(ref.bytes.begin(),
                                      ref.bytes.begin() + len);
        persist::ParseReport report;
        const persist::Snapshot snap = persist::parse(cut, report);
        EXPECT_LE(snap.records.size(), ref.snapshot.records.size());
    }
    // Differential check at a few representative cuts.
    for (const std::size_t len :
         {ref.bytes.size() / 3, ref.bytes.size() / 2,
          ref.bytes.size() - 1}) {
        expectGracefulBehaviour(
            ref, std::vector<std::uint8_t>(ref.bytes.begin(),
                                           ref.bytes.begin() + len));
    }
}

TEST(Persist, BitFlipsDegradeGracefully)
{
    const ColdReference ref;
    // One flip per probe, spread over header, provenance and records.
    for (const std::size_t pos :
         {std::size_t{0}, std::size_t{5}, std::size_t{41},
          std::size_t{57}, std::size_t{66}, ref.bytes.size() / 2,
          ref.bytes.size() - 9, ref.bytes.size() - 1}) {
        ASSERT_LT(pos, ref.bytes.size());
        std::vector<std::uint8_t> flipped = ref.bytes;
        flipped[pos] ^= 0x40;
        expectGracefulBehaviour(ref, flipped);
    }
}

TEST(Persist, SnapshotIsKeyedToImageAndConfig)
{
    const ColdReference ref;

    // A different guest program: same parse, refused import.
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(0, 0);
    a.movri(1, 7);
    a.syscall();
    const gx86::GuestImage other = a.finish("main");
    Dbt wrong_image(other, ref.config);
    const auto r1 = wrong_image.importSnapshot(ref.snapshot, true);
    EXPECT_FALSE(r1.applied);
    EXPECT_EQ(wrong_image.stats().get("persist.load_image_mismatch"), 1u);

    // A different pipeline configuration: refused import.
    DbtConfig tweaked = ref.config;
    tweaked.chaining = !tweaked.chaining;
    EXPECT_NE(persist::configFingerprint(tweaked),
              persist::configFingerprint(ref.config));
    Dbt wrong_config(ref.image, tweaked);
    const auto r2 = wrong_config.importSnapshot(ref.snapshot, true);
    EXPECT_FALSE(r2.applied);
    EXPECT_EQ(wrong_config.stats().get("persist.load_config_mismatch"),
              1u);
}

TEST(Persist, VersionAndHeaderCorruptionAreDistinguished)
{
    const ColdReference ref;

    // Future format version with a correctly re-checksummed header.
    std::vector<std::uint8_t> future = ref.bytes;
    future[4] = static_cast<std::uint8_t>(persist::FormatVersion + 1);
    const std::uint64_t sum = support::fnv1a64(future.data(), 56);
    for (std::size_t i = 0; i < 8; ++i)
        future[56 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
    persist::ParseReport vreport;
    persist::parse(future, vreport);
    EXPECT_FALSE(vreport.headerOk);
    EXPECT_EQ(vreport.version, persist::FormatVersion + 1);

    const std::string vpath = testing::TempDir() + "/future.rtbc";
    support::writeFileBytes(vpath, future);
    Dbt engine(ref.image, ref.config);
    const auto report = engine.loadPersistentCache(vpath);
    EXPECT_FALSE(report.applied);
    EXPECT_EQ(engine.stats().get("persist.load_version_mismatch"), 1u);

    // Garbage: counted as a corrupt header, not a version mismatch.
    const std::string gpath = testing::TempDir() + "/garbage.rtbc";
    support::writeFileBytes(gpath, {'n', 'o', 't', 'r', 't', 'b', 'c'});
    const auto greport = engine.loadPersistentCache(gpath);
    EXPECT_FALSE(greport.applied);
    EXPECT_EQ(engine.stats().get("persist.load_corrupt_header"), 1u);

    // Missing file: a silent cold start.
    const auto mreport =
        engine.loadPersistentCache(testing::TempDir() + "/absent.rtbc");
    EXPECT_FALSE(mreport.applied);
    EXPECT_EQ(engine.stats().get("persist.load_missing"), 1u);
}

TEST(Persist, ValidatorCatchesTamperedRecordThatReChecksums)
{
    const ColdReference ref;

    // Weaken one memory-ordering instruction in one record, then
    // re-serialize: every frame checksum is freshly computed, so the
    // tampering is invisible to the integrity layer and only the
    // obligation-graph validator can catch it.
    persist::Snapshot tampered = ref.snapshot;
    bool weakened = false;
    for (persist::TbRecord &rec : tampered.records) {
        for (std::uint32_t &word : rec.hostWords) {
            aarch::AInstr instr = aarch::decode(word);
            if (instr.op == aarch::AOp::Stlr)
                instr.op = aarch::AOp::Str;
            else if (instr.op == aarch::AOp::Ldapr ||
                     instr.op == aarch::AOp::Ldar)
                instr.op = aarch::AOp::Ldr;
            else if (instr.op == aarch::AOp::Dmb)
                instr.op = aarch::AOp::Nop;
            else
                continue;
            word = aarch::encode(instr);
            weakened = true;
            break;
        }
        if (weakened)
            break;
    }
    ASSERT_TRUE(weakened)
        << "sample guest produced no ordering instructions to weaken";

    const auto bytes = persist::serialize(tampered);
    persist::ParseReport parse_report;
    const persist::Snapshot reparsed = persist::parse(bytes, parse_report);
    EXPECT_TRUE(parse_report.headerOk);
    EXPECT_EQ(parse_report.recordsBadChecksum, 0u);

    Dbt engine(ref.image, ref.config);
    const auto report = engine.importSnapshot(reparsed, true);
    EXPECT_TRUE(report.applied);
    EXPECT_GE(report.rejected, 1u);
    EXPECT_GE(engine.stats().get("persist.tb_rejected_validation"), 1u);
    EXPECT_FALSE(engine.violations().empty());

    // The rejected block degrades to cold translation.
    const auto result = engine.run(twoThreads());
    EXPECT_TRUE(sameGuestBehaviour(ref.result, result));
}

TEST(Persist, LoaderFaultInjectionDegradesGracefully)
{
    const ColdReference ref;
    DbtConfig faulty = ref.config;
    faulty.faults.seed = 42;
    faulty.faults.siteRates[faultsites::PersistRecord] = 0.5;
    Dbt engine(ref.image, faulty);
    const auto report = engine.importSnapshot(ref.snapshot, true);
    EXPECT_TRUE(report.applied);
    EXPECT_EQ(report.loaded + report.rejected,
              ref.snapshot.records.size());
    EXPECT_GE(report.rejected, 1u);
    EXPECT_EQ(engine.stats().get("persist.tb_rejected_fault"),
              report.rejected);

    const auto result = engine.run(twoThreads());
    EXPECT_TRUE(sameGuestBehaviour(ref.result, result));
}

TEST(Persist, ChecksumOnlyImportStillDecodeChecks)
{
    const ColdReference ref;
    // An undecodable host word must be caught even when the validator
    // is off: the machine can never be handed an unfetchable word.
    persist::Snapshot broken = ref.snapshot;
    ASSERT_FALSE(broken.records.empty());
    ASSERT_FALSE(broken.records.front().hostWords.empty());
    broken.records.front().hostWords.front() = 0xffffffffu;

    Dbt engine(ref.image, ref.config);
    const auto report = engine.importSnapshot(broken, false);
    EXPECT_TRUE(report.applied);
    EXPECT_GE(report.rejected, 1u);
    EXPECT_GE(engine.stats().get("persist.tb_rejected_decode"), 1u);
    const auto result = engine.run(twoThreads());
    EXPECT_TRUE(sameGuestBehaviour(ref.result, result));
}

} // namespace
