/**
 * @file
 * Tests for the support utilities: formatting, tables, counters, RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/error.hh"
#include "support/format.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace
{

using namespace risotto;

TEST(Format, Strings)
{
    EXPECT_EQ(hexString(0xbeef), "0xbeef");
    EXPECT_EQ(fixedString(3.14159, 2), "3.14");
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("xyz", 2), "xyz");
    EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ","),
              "a,b,c");
    EXPECT_EQ(trimString("  hi \t"), "hi");
    EXPECT_EQ(trimString("   "), "");
}

TEST(Format, Split)
{
    const auto parts = splitString("a,,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    const auto kept = splitString("a,,b", ',', /*keep_empty=*/true);
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[1], "");
}

TEST(Stats, AccumulatorSummaries)
{
    Accumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(4.0);
    acc.add(6.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_NEAR(acc.stddev(), 1.632993, 1e-5);
}

TEST(Stats, ReportTableRendering)
{
    ReportTable table("demo", {"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow("beta", {2.5}, 1);
    EXPECT_EQ(table.rows(), 2u);
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("== demo =="), std::string::npos);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
    EXPECT_NE(csv.str().find("beta,2.5"), std::string::npos);
    EXPECT_THROW(table.addRow({"too", "many", "cells"}), FatalError);
}

TEST(Stats, StatSetCounters)
{
    StatSet stats;
    EXPECT_EQ(stats.get("missing"), 0u);
    stats.bump("a");
    stats.bump("a", 4);
    stats.set("b", 10);
    EXPECT_EQ(stats.get("a"), 5u);
    StatSet other;
    other.bump("a", 5);
    other.bump("c");
    stats.merge(other);
    EXPECT_EQ(stats.get("a"), 10u);
    EXPECT_EQ(stats.get("c"), 1u);
    stats.clear();
    EXPECT_EQ(stats.get("a"), 0u);
}

TEST(Rng, DeterministicAndWellDistributed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng c(43);
    std::set<std::uint64_t> seen;
    int buckets[8] = {};
    for (int i = 0; i < 8000; ++i) {
        const std::uint64_t v = c.next();
        seen.insert(v);
        buckets[c.below(8)]++;
    }
    EXPECT_EQ(seen.size(), 8000u); // No collisions in 8k draws.
    for (int count : buckets)
        EXPECT_GT(count, 800); // Roughly uniform.

    // range() is inclusive on both ends.
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = c.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Errors, TypedExceptions)
{
    EXPECT_THROW(panic("boom"), PanicError);
    EXPECT_THROW(fatal("bad input"), FatalError);
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    try {
        fatal("specific message");
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("specific message"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("fatal"),
                  std::string::npos);
    }
}

} // namespace
