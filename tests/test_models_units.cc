/**
 * @file
 * Hand-built execution graphs exercising individual axioms of the three
 * consistency models -- the unit-level counterpart of the litmus-driven
 * tests: each test constructs one execution and checks exactly one rule.
 */

#include <gtest/gtest.h>

#include "memcore/execution.hh"
#include "memcore/fencealg.hh"
#include "models/model.hh"

namespace
{

using namespace risotto;
using namespace risotto::memcore;
using models::ArmModel;
using models::ScModel;
using models::TcgModel;
using models::X86Model;

/** Small builder for hand-made executions. */
class ExecBuilder
{
  public:
    EventId
    init(Loc loc, Val val)
    {
        Event e;
        e.kind = EventKind::Write;
        e.loc = loc;
        e.value = val;
        e.isInit = true;
        return push(e);
    }

    EventId
    read(ThreadId tid, Loc loc, Val val, Access acc = Access::Plain,
         RmwKind rmw = RmwKind::None)
    {
        Event e;
        e.kind = EventKind::Read;
        e.tid = tid;
        e.loc = loc;
        e.value = val;
        e.access = acc;
        e.rmw = rmw;
        return push(e);
    }

    EventId
    write(ThreadId tid, Loc loc, Val val, Access acc = Access::Plain,
          RmwKind rmw = RmwKind::None)
    {
        Event e;
        e.kind = EventKind::Write;
        e.tid = tid;
        e.loc = loc;
        e.value = val;
        e.access = acc;
        e.rmw = rmw;
        return push(e);
    }

    EventId
    fence(ThreadId tid, FenceKind kind)
    {
        Event e;
        e.kind = EventKind::Fence;
        e.tid = tid;
        e.fence = kind;
        return push(e);
    }

    /** Finalize: po from per-thread order, given rf/co/rmw pairs. */
    Execution
    build(const std::vector<std::pair<EventId, EventId>> &rf,
          const std::vector<std::pair<EventId, EventId>> &co,
          const std::vector<std::pair<EventId, EventId>> &rmw = {})
    {
        Execution x;
        x.events = events_;
        x.initRelations();
        // Program order: same-thread non-init events in insertion order.
        for (std::size_t a = 0; a < events_.size(); ++a)
            for (std::size_t b = a + 1; b < events_.size(); ++b)
                if (!events_[a].isInit && !events_[b].isInit &&
                    events_[a].tid == events_[b].tid)
                    x.po.insert(events_[a].id, events_[b].id);
        for (auto [w, r] : rf)
            x.rf.insert(w, r);
        for (auto [a, b] : co)
            x.co.insert(a, b);
        for (auto [r, w] : rmw)
            x.rmw.insert(r, w);
        return x;
    }

  private:
    EventId
    push(Event e)
    {
        e.id = static_cast<EventId>(events_.size());
        e.poIndex = static_cast<std::uint32_t>(e.id);
        events_.push_back(e);
        return e.id;
    }

    std::vector<Event> events_;
};

TEST(Axioms, ScPerLocRejectsCoherenceViolation)
{
    // T0 writes x=1 then reads x=0 from init: po;fr cycle.
    ExecBuilder b;
    const EventId init = b.init(0, 0);
    const EventId w = b.write(0, 0, 1);
    const EventId r = b.read(0, 0, 0);
    Execution x = b.build({{init, r}}, {{init, w}});
    EXPECT_TRUE(x.wellFormed());
    EXPECT_FALSE(models::scPerLoc(x));
}

TEST(Axioms, AtomicityRejectsInterveningWrite)
{
    // T0's successful RMW on x is split by T1's write.
    ExecBuilder b;
    const EventId init = b.init(0, 0);
    const EventId r = b.read(0, 0, 0, Access::Plain, RmwKind::Amo);
    const EventId w = b.write(0, 0, 1, Access::Plain, RmwKind::Amo);
    const EventId intruder = b.write(1, 0, 5);
    Execution x = b.build({{init, r}},
                          {{init, intruder}, {intruder, w}, {init, w}},
                          {{r, w}});
    EXPECT_TRUE(x.wellFormed());
    EXPECT_FALSE(models::atomicity(x));

    // Same shape with the intruder ordered after the RMW is fine.
    Execution y = b.build({{init, r}},
                          {{init, w}, {w, intruder}, {init, intruder}},
                          {{r, w}});
    EXPECT_TRUE(models::atomicity(y));
}

TEST(Axioms, X86GhbOrdersWriteWrite)
{
    // MP weak outcome violates GHB through ppo(WW) + ppo(RR).
    ExecBuilder b;
    const EventId ix = b.init(0, 0);
    const EventId iy = b.init(1, 0);
    const EventId wx = b.write(0, 0, 1);
    const EventId wy = b.write(0, 1, 1);
    const EventId ry = b.read(1, 1, 1);
    const EventId rx = b.read(1, 0, 0);
    Execution x = b.build({{wy, ry}, {ix, rx}}, {{ix, wx}, {iy, wy}});
    ASSERT_TRUE(x.wellFormed());
    EXPECT_FALSE(X86Model().consistent(x));
    // The same graph is fine for Arm (no fences anywhere).
    EXPECT_TRUE(
        ArmModel(ArmModel::AmoRule::Corrected).consistent(x));
}

TEST(Axioms, TcgOrdRelationMatchesFigure6)
{
    // [R]; po; [Frm]; po; [W] is in ord; [W]; po; [Frm]; po; [W] is not.
    ExecBuilder b;
    b.init(0, 0);
    b.init(1, 0);
    const EventId r = b.read(0, 0, 0);
    b.fence(0, FenceKind::Frm);
    const EventId w = b.write(0, 1, 1);
    Execution x = b.build({{0, r}}, {{1, w}});
    const auto ord = TcgModel::ord(x);
    EXPECT_TRUE(ord.contains(r, w));

    ExecBuilder b2;
    b2.init(0, 0);
    b2.init(1, 0);
    const EventId w1 = b2.write(0, 0, 1);
    b2.fence(0, FenceKind::Frm);
    const EventId w2 = b2.write(0, 1, 1);
    Execution y = b2.build({}, {{0, w1}, {1, w2}});
    EXPECT_FALSE(TcgModel::ord(y).contains(w1, w2));
}

TEST(Axioms, TcgRmwEventsActAsFence)
{
    // po;[dom(rmw)] and [codom(rmw)];po order around an SC RMW.
    ExecBuilder b;
    b.init(0, 0);
    b.init(1, 0);
    b.init(2, 0);
    const EventId w = b.write(0, 0, 1);
    const EventId rr = b.read(0, 1, 0, Access::Sc, RmwKind::Amo);
    const EventId rw = b.write(0, 1, 1, Access::Sc, RmwKind::Amo);
    const EventId after = b.read(0, 2, 0);
    Execution x =
        b.build({{1, rr}, {2, after}}, {{0, w}, {1, rw}}, {{rr, rw}});
    const auto ord = TcgModel::ord(x);
    EXPECT_TRUE(ord.contains(w, rr));    // po;[dom(rmw)]
    EXPECT_TRUE(ord.contains(rw, after)); // [codom(rmw)];po
    EXPECT_FALSE(ord.contains(w, after)); // ...but ghb closes it.
}

TEST(Axioms, ArmBobDmbLdOrdersReadsOnly)
{
    ExecBuilder b;
    b.init(0, 0);
    b.init(1, 0);
    const EventId w = b.write(0, 0, 1);
    const EventId r = b.read(0, 1, 0);
    b.fence(0, FenceKind::DmbLd);
    const EventId r2 = b.read(0, 0, 1);
    Execution x = b.build({{1, r}, {w, r2}}, {{0, w}});
    const ArmModel arm(ArmModel::AmoRule::Corrected);
    const auto lob = arm.lob(x);
    EXPECT_TRUE(lob.contains(r, r2));  // [R];po;[Fld];po.
    EXPECT_FALSE(lob.contains(w, r2)); // Writes not ordered by DMBLD.
}

TEST(Axioms, ArmReleaseAcquireOrdering)
{
    ExecBuilder b;
    b.init(0, 0);
    b.init(1, 0);
    const EventId before = b.write(0, 0, 1);
    const EventId rel = b.write(0, 1, 1, Access::Release);
    Execution x = b.build({}, {{0, before}, {1, rel}});
    const ArmModel arm(ArmModel::AmoRule::Corrected);
    // po;[L]: everything before the release is ordered with it.
    EXPECT_TRUE(arm.lob(x).contains(before, rel));
}

TEST(Axioms, ArmCorrectedAmoActsAsFullBarrier)
{
    // W(x); casal(y); R(z): corrected bob orders W -> amo and amo -> R.
    ExecBuilder b;
    b.init(0, 0);
    b.init(1, 0);
    b.init(2, 0);
    const EventId w = b.write(0, 0, 1);
    const EventId ar = b.read(0, 1, 0, Access::Acquire, RmwKind::Amo);
    const EventId aw = b.write(0, 1, 1, Access::Release, RmwKind::Amo);
    const EventId r = b.read(0, 2, 0);
    Execution x =
        b.build({{1, ar}, {2, r}}, {{0, w}, {1, aw}}, {{ar, aw}});

    const ArmModel fixed(ArmModel::AmoRule::Corrected);
    EXPECT_TRUE(fixed.lob(x).contains(w, ar));
    EXPECT_TRUE(fixed.lob(x).contains(aw, r));
    EXPECT_TRUE(fixed.lob(x).contains(w, r));

    const ArmModel orig(ArmModel::AmoRule::Original);
    // The original rule orders only across the whole amo: w -> r.
    EXPECT_TRUE(orig.lob(x).contains(w, r));
    EXPECT_FALSE(orig.lob(x).contains(aw, r));
}

TEST(Axioms, WellFormednessCatchesBadGraphs)
{
    // rf with mismatched value.
    ExecBuilder b;
    const EventId init = b.init(0, 0);
    const EventId w = b.write(0, 0, 1);
    const EventId r = b.read(1, 0, 2); // Reads value nobody wrote.
    Execution x = b.build({{w, r}}, {{init, w}});
    std::string why;
    EXPECT_FALSE(x.wellFormed(&why));
    EXPECT_NE(why.find("value"), std::string::npos);

    // Read without an rf source.
    Execution y = b.build({}, {{init, w}});
    EXPECT_FALSE(y.wellFormed(&why));

    // co not total.
    ExecBuilder b2;
    b2.init(0, 0);
    b2.write(0, 0, 1);
    b2.write(1, 0, 2);
    Execution z = b2.build({}, {{0, 1}, {0, 2}}); // 1 and 2 unordered.
    EXPECT_FALSE(z.wellFormed(&why));
    EXPECT_NE(why.find("total"), std::string::npos);
}

TEST(FenceAlgebra, LatticeLaws)
{
    using namespace risotto::memcore;
    // Merge is commutative and covers both operands.
    const FenceKind kinds[] = {FenceKind::Frr, FenceKind::Frw,
                               FenceKind::Frm, FenceKind::Fwr,
                               FenceKind::Fww, FenceKind::Fwm,
                               FenceKind::Fmr, FenceKind::Fmw,
                               FenceKind::Fmm, FenceKind::Fsc};
    for (FenceKind a : kinds) {
        EXPECT_TRUE(fenceAtLeast(a, a));
        for (FenceKind b : kinds) {
            const FenceKind m = mergeFences(a, b);
            EXPECT_EQ(m, mergeFences(b, a));
            EXPECT_TRUE(fenceAtLeast(m, a))
                << fenceKindName(a) << "+" << fenceKindName(b);
            EXPECT_TRUE(fenceAtLeast(m, b));
        }
        // Fsc dominates everything.
        EXPECT_TRUE(fenceAtLeast(FenceKind::Fsc, a));
        EXPECT_EQ(mergeFences(a, FenceKind::Fsc), FenceKind::Fsc);
    }
    EXPECT_EQ(mergeFences(FenceKind::Frr, FenceKind::Frw),
              FenceKind::Frm);
    EXPECT_EQ(mergeFences(FenceKind::Frm, FenceKind::Fww),
              FenceKind::Fmm);
    EXPECT_FALSE(fenceAtLeast(FenceKind::Fmm, FenceKind::Fsc));
}

} // namespace
