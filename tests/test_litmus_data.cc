/**
 * @file
 * Sweep of the on-disk litmus corpus (data/litmus/ *.litmus files): every file
 * parses, its forbidden/exists expectation holds under x86-TSO, and the
 * Risotto pipeline refines it while the known-broken QEMU translations
 * fail exactly on the files that document them (MPQ/SBQ/SBAL).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/parser.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;

const models::X86Model kX86;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);

std::vector<std::filesystem::path>
corpusFiles()
{
    // Locate data/litmus relative to common invocation directories.
    for (const char *root : {"data/litmus", "../data/litmus",
                             "../../data/litmus",
                             RISOTTO_SOURCE_DIR "/data/litmus"}) {
        std::error_code ec;
        if (std::filesystem::is_directory(root, ec)) {
            std::vector<std::filesystem::path> files;
            for (const auto &entry :
                 std::filesystem::directory_iterator(root))
                if (entry.path().extension() == ".litmus")
                    files.push_back(entry.path());
            std::sort(files.begin(), files.end());
            return files;
        }
    }
    return {};
}

LitmusTest
load(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseLitmus(buffer.str());
}

TEST(LitmusData, CorpusIsPresent)
{
    EXPECT_GE(corpusFiles().size(), 10u);
}

class LitmusFile : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LitmusFile, ExpectationHoldsUnderX86)
{
    const LitmusTest test = load(GetParam());
    const BehaviorSet behaviors =
        enumerateBehaviors(test.program, kX86);
    EXPECT_GT(behaviors.size(), 0u);
    const bool observed = test.interesting.existsIn(behaviors);
    if (test.forbiddenInSource)
        EXPECT_FALSE(observed) << test.program.name;
    else
        EXPECT_TRUE(observed) << test.program.name;
}

TEST_P(LitmusFile, RisottoPipelineRefines)
{
    const LitmusTest test = load(GetParam());
    const Program arm = mapping::mapX86ToArm(
        test.program, mapping::X86ToTcgScheme::Risotto,
        mapping::TcgToArmScheme::Risotto,
        mapping::RmwLowering::InlineCasal);
    EXPECT_TRUE(checkRefinement(test.program, kX86, arm, kArm).correct)
        << test.program.name;
}

TEST_P(LitmusFile, QemuPipelineFailsExactlyOnDocumentedTests)
{
    const LitmusTest test = load(GetParam());
    // MPQ breaks under the casal helper; SBQ and SBAL under ldaxr/stlxr.
    const bool casal_should_fail = test.program.name == "MPQ";
    const bool lxsx_should_fail = test.program.name == "SBQ" ||
                                  test.program.name == "SBAL" ||
                                  casal_should_fail;
    const Program casal = mapping::mapX86ToArm(
        test.program, mapping::X86ToTcgScheme::Qemu,
        mapping::TcgToArmScheme::Qemu,
        mapping::RmwLowering::HelperRmw1AL);
    EXPECT_EQ(checkRefinement(test.program, kX86, casal, kArm).correct,
              !casal_should_fail)
        << test.program.name << " (rmw1al)";
    const Program lxsx = mapping::mapX86ToArm(
        test.program, mapping::X86ToTcgScheme::Qemu,
        mapping::TcgToArmScheme::Qemu,
        mapping::RmwLowering::HelperRmw2AL);
    EXPECT_EQ(checkRefinement(test.program, kX86, lxsx, kArm).correct,
              !lxsx_should_fail)
        << test.program.name << " (rmw2al)";
}

std::vector<std::string>
corpusFileNames()
{
    std::vector<std::string> out;
    for (const auto &path : corpusFiles())
        out.push_back(path.string());
    if (out.empty())
        out.push_back("MISSING-CORPUS");
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    DataCorpus, LitmusFile, ::testing::ValuesIn(corpusFileNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name =
            std::filesystem::path(info.param).stem().string();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
