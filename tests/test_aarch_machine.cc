/**
 * @file
 * Tests for the aarch host ISA (codec round-trips, emitter fixups) and
 * the weak-memory machine (semantics, store buffers, exclusives, atomics,
 * cost accounting, weak-behaviour stress).
 */

#include <gtest/gtest.h>

#include "aarch/emitter.hh"
#include "aarch/isa.hh"
#include "gx86/memory.hh"
#include "machine/machine.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;
using namespace risotto::aarch;
using machine::Machine;
using machine::MachineConfig;

TEST(AarchCodec, RoundTripRepresentativeInstructions)
{
    std::vector<AInstr> cases;
    auto push = [&](AInstr i) { cases.push_back(i); };
    {
        AInstr i;
        i.op = AOp::MovZ;
        i.rd = 7;
        i.shift = 2;
        i.imm = 0xbeef;
        push(i);
    }
    {
        AInstr i;
        i.op = AOp::Ldr;
        i.rd = 3;
        i.rn = 15;
        i.imm = -128;
        push(i);
    }
    {
        AInstr i;
        i.op = AOp::Stxr;
        i.rd = 26;
        i.rn = 4;
        i.rm = 9;
        push(i);
    }
    {
        AInstr i;
        i.op = AOp::Casal;
        i.rd = 1;
        i.rn = 2;
        i.rm = 3;
        push(i);
    }
    {
        AInstr i;
        i.op = AOp::Bcond;
        i.cond = Cond::Le;
        i.imm = -12345;
        push(i);
    }
    {
        AInstr i;
        i.op = AOp::Dmb;
        i.barrier = Barrier::St;
        push(i);
    }
    {
        AInstr i;
        i.op = AOp::Helper;
        i.helper = 9;
        i.imm = 512;
        push(i);
    }
    for (const AInstr &original : cases) {
        const AInstr decoded = decode(encode(original));
        EXPECT_EQ(decoded.toString(), original.toString());
    }
}

TEST(AarchCodec, RandomRoundTrip)
{
    Rng rng(11);
    const AOp pool[] = {
        AOp::Nop, AOp::MovZ, AOp::MovK, AOp::MovRR, AOp::Ldr, AOp::Str,
        AOp::Ldar, AOp::Stlr, AOp::Ldxr, AOp::Stxr, AOp::Cas, AOp::Casal,
        AOp::Dmb, AOp::Add, AOp::SubI, AOp::Cmp, AOp::B, AOp::Bcond,
        AOp::Cbz, AOp::Bl, AOp::Ret, AOp::Fadd, AOp::Helper, AOp::ExitTb,
        AOp::Cset, AOp::Ldaddal, AOp::Ldapr,
    };
    for (int n = 0; n < 500; ++n) {
        AInstr i;
        i.op = pool[rng.below(std::size(pool))];
        i.rd = static_cast<XReg>(rng.below(32));
        i.rn = static_cast<XReg>(rng.below(32));
        i.rm = static_cast<XReg>(rng.below(32));
        i.cond = static_cast<Cond>(rng.below(6));
        i.barrier = static_cast<Barrier>(rng.below(3));
        i.shift = static_cast<std::uint8_t>(rng.below(4));
        i.helper = static_cast<std::uint8_t>(rng.below(12));
        switch (i.op) {
          case AOp::MovZ:
          case AOp::MovK:
          case AOp::Helper:
            i.imm = static_cast<std::int32_t>(rng.below(0x10000));
            break;
          case AOp::Ldr:
          case AOp::Str:
          case AOp::SubI:
            i.imm = static_cast<std::int32_t>(rng.range(-8192, 8191));
            break;
          case AOp::B:
          case AOp::Bl:
            i.imm = static_cast<std::int32_t>(rng.range(-8000000, 8000000));
            break;
          case AOp::Bcond:
            i.imm = static_cast<std::int32_t>(rng.range(-500000, 500000));
            break;
          case AOp::Cbz:
            i.imm = static_cast<std::int32_t>(rng.range(-200000, 200000));
            break;
          case AOp::Cset:
            i.imm = static_cast<std::int32_t>(rng.below(32));
            break;
          case AOp::ExitTb:
            i.imm = static_cast<std::int32_t>(rng.below(1 << 24));
            break;
          default:
            i.imm = 0;
            break;
        }
        const AInstr decoded = decode(encode(i));
        EXPECT_EQ(decoded.toString(), i.toString());
    }
}

/** Helper to build a machine over a one-off code sequence. */
struct HostProgram
{
    CodeBuffer code;
    gx86::Memory memory;
    Emitter em{code};

    Machine
    makeMachine(MachineConfig config = {})
    {
        em.finish();
        return Machine(code, memory, config);
    }
};

TEST(MachineExec, ArithmeticAndExit)
{
    HostProgram p;
    p.em.movImm(1, 6);
    p.em.movImm(2, 7);
    p.em.mul(1, 1, 2);
    p.em.movImm(0, 0); // exit syscall
    p.em.svc();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).exitCode, 42);
}

TEST(MachineExec, LoopWithBranches)
{
    HostProgram p;
    auto &em = p.em;
    em.movImm(1, 0);   // acc
    em.movImm(2, 10);  // counter
    const auto loop = em.newLabel();
    em.bind(loop);
    em.add(1, 1, 2);
    em.subi(2, 2, 1);
    em.cbnz(2, loop);
    em.movImm(0, 0);
    em.svc();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).exitCode, 55);
}

TEST(MachineExec, MemoryAndStoreBufferDrainOnHalt)
{
    HostProgram p;
    auto &em = p.em;
    em.movImm(3, 0x400000);
    em.movImm(4, 1234);
    em.str(4, 3, 16);
    em.hlt();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(p.memory.load64(0x400010), 1234u);
}

TEST(MachineExec, CasalSemantics)
{
    HostProgram p;
    auto &em = p.em;
    p.memory.store64(0x400000, 5);
    em.movImm(3, 0x400000);
    em.movImm(1, 5);   // expected
    em.movImm(2, 99);  // new
    em.casal(1, 2, 3); // succeeds; x1 <- old (5)
    em.movImm(4, 7);   // expected (wrong)
    em.movImm(5, 111);
    em.casal(4, 5, 3); // fails; x4 <- 99
    em.hlt();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).x[1], 5u);
    EXPECT_EQ(m.core(0).x[4], 99u);
    EXPECT_EQ(p.memory.load64(0x400000), 99u);
}

TEST(MachineExec, ExclusivePairSucceedsLocally)
{
    HostProgram p;
    auto &em = p.em;
    p.memory.store64(0x400000, 10);
    em.movImm(3, 0x400000);
    const auto retry = em.newLabel();
    em.bind(retry);
    em.ldxr(1, 3);
    em.addi(2, 1, 32);
    em.stxr(26, 2, 3);
    em.cbnz(26, retry);
    em.hlt();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(p.memory.load64(0x400000), 42u);
}

TEST(MachineExec, LdaddalAtomicAdd)
{
    HostProgram p;
    auto &em = p.em;
    p.memory.store64(0x400000, 40);
    em.movImm(3, 0x400000);
    em.movImm(2, 2);
    em.ldaddal(1, 2, 3);
    em.hlt();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).x[1], 40u);
    EXPECT_EQ(p.memory.load64(0x400000), 42u);
}

TEST(MachineExec, StoreForwardingSeesOwnStores)
{
    HostProgram p;
    auto &em = p.em;
    em.movImm(3, 0x400000);
    em.movImm(4, 77);
    em.str(4, 3, 0);
    em.ldr(5, 3, 0); // Must forward 77 even while buffered.
    em.movImm(0, 0);
    em.mov(1, 5);
    em.svc();
    MachineConfig config;
    config.randomize = true; // Keep stores buffered longer.
    config.seed = 3;
    Machine m = p.makeMachine(config);
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).exitCode, 77);
}

TEST(MachineExec, DmbCostsAccrue)
{
    HostProgram p;
    auto &em = p.em;
    em.dmb(Barrier::Full);
    em.hlt();
    Machine m1 = p.makeMachine();
    m1.addCore(0);
    m1.run();
    const std::uint64_t with_fence = m1.core(0).cycles;

    HostProgram q;
    q.em.nop();
    q.em.hlt();
    Machine m2 = q.makeMachine();
    m2.addCore(0);
    m2.run();
    EXPECT_GT(with_fence, m2.core(0).cycles + 20);
}

/**
 * Weak-memory stress: two cores run the MP pattern with plain stores.
 * Without fences the relaxed drain must (sometimes) expose the weak
 * outcome; with DMB ISH between the stores it never appears.
 */
TEST(MachineWeak, MessagePassingReordersWithoutFences)
{
    int weak_unfenced = 0;
    int weak_fenced = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        for (const bool fenced : {false, true}) {
            CodeBuffer code;
            gx86::Memory memory;
            Emitter em(code);
            // Writer at word 0.
            const CodeAddr writer = em.here();
            em.movImm(3, 0x400000);
            em.movImm(4, 1);
            em.str(4, 3, 0); // X = 1
            if (fenced)
                em.dmb(Barrier::Full);
            em.str(4, 3, 8); // Y = 1
            em.hlt();
            // Reader.
            const CodeAddr reader = em.here();
            em.movImm(3, 0x400000);
            em.ldr(5, 3, 8); // a = Y
            if (fenced)
                em.dmb(Barrier::Full);
            em.ldr(6, 3, 0); // b = X
            em.hlt();
            em.finish();

            MachineConfig config;
            config.randomize = true;
            config.seed = seed * 7 + 1;
            Machine m(code, memory, config);
            m.addCore(writer);
            m.addCore(reader);
            EXPECT_TRUE(m.run());
            const bool weak =
                m.core(1).x[5] == 1 && m.core(1).x[6] == 0;
            if (weak)
                (fenced ? weak_fenced : weak_unfenced)++;
        }
    }
    EXPECT_GT(weak_unfenced, 0) << "relaxed machine never reordered";
    EXPECT_EQ(weak_fenced, 0) << "DMB failed to order stores";
}

TEST(MachineWeak, ContendedCasChargesLineTransfer)
{
    // Two cores CAS the same location in turn; the second access must be
    // charged a line transfer.
    CodeBuffer code;
    gx86::Memory memory;
    Emitter em(code);
    const CodeAddr entry = em.here();
    em.movImm(3, 0x400000);
    em.movImm(1, 0);
    em.movImm(2, 1);
    em.casal(1, 2, 3);
    em.hlt();
    em.finish();
    Machine m(code, memory, {});
    m.addCore(entry);
    m.addCore(entry);
    EXPECT_TRUE(m.run());
    EXPECT_GE(m.stats().get("machine.line_transfers"), 1u);
}

} // namespace

namespace
{

TEST(MachineTrace, HookSeesEveryRetiredInstruction)
{
    HostProgram p;
    auto &em = p.em;
    em.movImm(1, 3);
    const auto loop = em.newLabel();
    em.bind(loop);
    em.subi(1, 1, 1);
    em.cbnz(1, loop);
    em.hlt();

    std::vector<std::string> trace;
    MachineConfig config;
    config.trace = [&](const machine::Core &core,
                       const risotto::aarch::AInstr &in) {
        trace.push_back(std::to_string(core.pc) + ": " + in.toString());
    };
    p.em.finish();
    Machine m(p.code, p.memory, config);
    m.addCore(0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(trace.size(), m.core(0).retired);
    // movImm, then 3x (sub, cbnz), then hlt.
    EXPECT_EQ(trace.size(), 1u + 3 * 2 + 1u);
    EXPECT_NE(trace.front().find("movz"), std::string::npos);
    EXPECT_NE(trace.back().find("hlt"), std::string::npos);
}

/** Two cores increment a shared cell through LDXR/STXR retry loops. */
void
emitExclusiveIncrementLoop(Emitter &em, std::uint64_t iterations)
{
    em.movImm(3, 0x400000);
    em.movImm(5, static_cast<std::int64_t>(iterations));
    const auto outer = em.newLabel();
    em.bind(outer);
    const auto retry = em.newLabel();
    em.bind(retry);
    em.ldxr(1, 3);
    em.addi(2, 1, 1);
    em.stxr(26, 2, 3);
    em.cbnz(26, retry);
    em.subi(5, 5, 1);
    em.cbnz(5, outer);
    em.hlt();
}

TEST(MachineWatchdog, InjectedStxrFailuresStillMakeProgress)
{
    // Spurious STXR failures are architecturally allowed, so injecting
    // them at a brutal rate must never change the final count -- the
    // randomized backoff only has to guarantee forward progress.
    HostProgram p;
    emitExclusiveIncrementLoop(p.em, 200);
    MachineConfig config;
    config.randomize = true;
    config.seed = 42;
    config.faults.seed = 9;
    config.faults.siteRates[faultsites::MachineStxr] = 0.9;
    config.livelockThreshold = 8;
    config.livelockBackoffBase = 32;
    Machine m = p.makeMachine(config);
    m.addCore(0);
    m.addCore(0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.diagnosis(), machine::RunDiagnosis::Finished);
    EXPECT_EQ(p.memory.load64(0x400000), 400u);
    EXPECT_GT(m.stats().get("machine.watchdog_backoffs"), 0u);
    EXPECT_GT(m.faults().stats().get("fault.machine.stxr.injected"), 0u);
    // Every injected failure was eventually followed by a success.
    EXPECT_EQ(m.faults().stats().get("fault.machine.stxr.injected"),
              m.faults().stats().get("fault.machine.stxr.recovered"));
}

TEST(MachineWatchdog, PermanentStxrFailureDiagnosedAsLivelock)
{
    HostProgram p;
    emitExclusiveIncrementLoop(p.em, 1);
    MachineConfig config;
    config.faults.seed = 5;
    config.faults.siteRates[faultsites::MachineStxr] = 1.0;
    Machine m = p.makeMachine(config);
    m.addCore(0);
    EXPECT_FALSE(m.run(200'000));
    EXPECT_EQ(m.diagnosis(), machine::RunDiagnosis::Livelock);
    EXPECT_EQ(machine::runDiagnosisName(m.diagnosis()), "livelock");
}

TEST(MachineWatchdog, PlainSpinDiagnosedAsBudgetExhausted)
{
    HostProgram p;
    auto &em = p.em;
    em.movImm(1, 1);
    const auto loop = em.newLabel();
    em.bind(loop);
    em.cbnz(1, loop);
    em.hlt();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_FALSE(m.run(10'000));
    EXPECT_EQ(m.diagnosis(), machine::RunDiagnosis::BudgetExhausted);

    HostProgram q;
    q.em.hlt();
    Machine done = q.makeMachine();
    done.addCore(0);
    EXPECT_TRUE(done.run());
    EXPECT_EQ(done.diagnosis(), machine::RunDiagnosis::Finished);
    EXPECT_EQ(machine::runDiagnosisName(done.diagnosis()), "finished");
}

} // namespace
