/**
 * @file
 * Robustness tests for the fault-injection framework: FaultPlan /
 * FaultInjector unit behaviour, the differential property that every
 * workload proxy and the litmus stress runner survive faults at every
 * registered site with guest-visible state identical to (workloads) or
 * axiomatically sound against (litmus) the fault-free run, and the
 * degraded modes (tiny code buffer, permanent translation failure).
 */

#include <cstring>

#include <gtest/gtest.h>

#include "dbt/dbt.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "machine/machine.hh"
#include "models/model.hh"
#include "risotto/stress.hh"
#include "support/faultinject.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;
using workloads::WorkloadSpec;

const models::X86Model kX86;

/** A plan arming every registered site hard enough to fire on every
 * workload (the ISSUE floor is rate >= 1%; we go well past it). */
FaultPlan
aggressivePlan()
{
    FaultPlan plan = FaultPlan::allSites(0xfa17, 0.05);
    plan.siteRates[faultsites::DbtDecode] = 0.2;
    plan.siteRates[faultsites::DbtEncode] = 0.2;
    plan.siteRates[faultsites::DbtBuffer] = 0.2;
    plan.siteRates[faultsites::MachineStxr] = 0.3;
    plan.siteRates[faultsites::PersistRecord] = 0.2;
    return plan;
}

// --- FaultPlan / FaultInjector units ---------------------------------------

TEST(FaultPlanUnit, DisarmedByDefault)
{
    const FaultPlan plan;
    EXPECT_FALSE(plan.armed());

    FaultInjector inj(plan);
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.shouldInject(faultsites::DbtDecode));
    EXPECT_EQ(inj.injected(faultsites::DbtDecode), 0u);
}

TEST(FaultPlanUnit, ZeroSeedDisarmsEvenWithRates)
{
    FaultPlan plan;
    plan.rate = 1.0;
    EXPECT_FALSE(plan.armed());
    FaultInjector inj(plan);
    EXPECT_FALSE(inj.shouldInject(faultsites::MachineStxr));
}

TEST(FaultPlanUnit, SiteRatesOverrideDefaultRate)
{
    FaultPlan plan = FaultPlan::allSites(3, 0.5);
    plan.siteRates[faultsites::DbtEncode] = 0.0;
    EXPECT_EQ(plan.rateFor(faultsites::DbtEncode), 0.0);
    EXPECT_EQ(plan.rateFor(faultsites::DbtDecode), 0.5);

    FaultInjector inj(plan);
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(inj.shouldInject(faultsites::DbtEncode));
    EXPECT_EQ(inj.injected(faultsites::DbtEncode), 0u);
}

TEST(FaultPlanUnit, RateOneAlwaysFires)
{
    FaultInjector inj(FaultPlan::allSites(11, 1.0));
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(inj.shouldInject(faultsites::DbtBuffer));
    EXPECT_EQ(inj.injected(faultsites::DbtBuffer), 100u);
    EXPECT_EQ(inj.stats().get("fault.dbt.buffer.injected"), 100u);
}

TEST(FaultInjectorUnit, SameSeedReproducesSameSchedule)
{
    const FaultPlan plan = FaultPlan::allSites(42, 0.3);
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (const char *site : faultsites::All)
        for (int i = 0; i < 1000; ++i)
            ASSERT_EQ(a.shouldInject(site), b.shouldInject(site)) << site;
}

TEST(FaultInjectorUnit, SitesDrawFromIndependentStreams)
{
    // Draining one site's stream must not perturb another's schedule.
    const FaultPlan plan = FaultPlan::allSites(42, 0.3);
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 777; ++i)
        b.shouldInject(faultsites::DbtDecode);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.shouldInject(faultsites::MachineStxr),
                  b.shouldInject(faultsites::MachineStxr));
}

TEST(FaultInjectorUnit, RecoveryCountersTrackPerSite)
{
    FaultInjector inj(FaultPlan::allSites(5, 1.0));
    inj.shouldInject(faultsites::DbtDecode);
    inj.recovered(faultsites::DbtDecode);
    inj.recovered(faultsites::DbtBuffer, 3);
    EXPECT_EQ(inj.stats().get("fault.dbt.decode.injected"), 1u);
    EXPECT_EQ(inj.stats().get("fault.dbt.decode.recovered"), 1u);
    EXPECT_EQ(inj.stats().get("fault.dbt.buffer.recovered"), 3u);
}

// --- The differential robustness property ----------------------------------

/** Guest-visible state must be identical between @p faulty and the
 * fault-free reference: exit codes, outputs, and final memory. */
void
expectSameGuestState(const dbt::RunResult &expected,
                     const dbt::RunResult &result, const std::string &tag)
{
    ASSERT_TRUE(result.finished)
        << tag << ": " << machine::runDiagnosisName(result.diagnosis);
    EXPECT_EQ(result.exitCodes, expected.exitCodes) << tag;
    EXPECT_EQ(result.outputs, expected.outputs) << tag;
    ASSERT_EQ(result.memory->size(), expected.memory->size()) << tag;
    EXPECT_EQ(std::memcmp(result.memory->raw(0, result.memory->size()),
                          expected.memory->raw(0, expected.memory->size()),
                          result.memory->size()),
              0)
        << tag << ": final guest memory diverged";
}

TEST(FaultDifferential, AllWorkloadsMatchFaultFreeRun)
{
    // Run all 16 workload proxies under both RMW lowerings (only
    // FencedRmw2 emits LDXR/STXR, so only it exercises machine.stxr)
    // with every fault site armed, and demand guest-visible equality
    // with the fault-free run. Aggregate the fault counters across the
    // sweep: every site must actually have fired and recovered.
    StatSet totals;
    std::uint64_t fallback_blocks = 0;
    std::uint64_t retries = 0;
    // Each workload gets its own engine (and so a fresh injector): vary
    // the seed per run, or every engine would replay the same short
    // per-site stream prefix and the aggregate would not diversify.
    std::uint64_t plan_seed = 0xfa17;
    for (const mapping::RmwLowering rmw :
         {mapping::RmwLowering::InlineCasal,
          mapping::RmwLowering::FencedRmw2}) {
        for (WorkloadSpec spec : workloads::fullSuite()) {
            spec.iterations = 100;
            const gx86::GuestImage image =
                workloads::buildGuestWorkload(spec);
            DbtConfig clean = DbtConfig::risotto();
            clean.rmw = rmw;
            DbtConfig faulty = clean;
            faulty.faults = aggressivePlan();
            faulty.faults.seed = ++plan_seed;

            std::vector<ThreadSpec> threads(2);
            threads[1].regs[0] = 1;

            // An eager watchdog so the backoff path is exercised at the
            // modest injection rates above (it must not change results).
            machine::MachineConfig mc;
            mc.livelockThreshold = 3;
            mc.livelockBackoffBase = 16;

            Dbt reference(image, clean);
            const auto expected = reference.run(threads, mc);
            ASSERT_TRUE(expected.finished) << spec.name;

            Dbt engine(image, faulty);
            // Warm-start the faulty engine from the reference run's
            // snapshot: record loads are a fault site too
            // (persist.record), and a dropped record may only cost a
            // cold translation, never guest-visible divergence.
            engine.importSnapshot(reference.exportSnapshot(),
                                  /*validate=*/true);
            const auto result = engine.run(threads, mc);
            const std::string tag =
                spec.name + "/" + mapping::rmwLoweringName(rmw);
            expectSameGuestState(expected, result, tag);

            totals.merge(result.stats);
            fallback_blocks += result.fallbackBlocks;
            retries += result.translationRetries;
        }
    }
    for (const char *site : faultsites::All) {
        const std::string name(site);
        // The serving-layer site only fires inside serve::runSession,
        // which a plain Dbt::run never enters; tests/test_serve.cc owns
        // its differential coverage.
        if (name == faultsites::ServeSession)
            continue;
        EXPECT_GT(totals.get("fault." + name + ".injected"), 0u) << name;
        EXPECT_GT(totals.get("fault." + name + ".recovered"), 0u) << name;
    }
    EXPECT_GT(fallback_blocks, 0u);
    EXPECT_GT(retries, 0u);
    EXPECT_GT(totals.get("machine.watchdog_backoffs"), 0u);
}

TEST(FaultDifferential, StressRunnerStaysSoundUnderFaults)
{
    // The litmus stress runner under faults: every schedule must still
    // terminate, and every observed outcome must remain inside the x86
    // axiomatic behaviours of the source program (the same soundness
    // bar the fault-free runner is held to).
    for (const mapping::RmwLowering rmw :
         {mapping::RmwLowering::InlineCasal,
          mapping::RmwLowering::FencedRmw2}) {
        dbt::DbtConfig config = dbt::DbtConfig::risotto();
        config.rmw = rmw;
        config.faults = aggressivePlan();
        for (const litmus::LitmusTest &test :
             {litmus::mp(), litmus::sb(), litmus::sbal()}) {
            litmus::BehaviorSet x86_behaviors;
            for (const litmus::Outcome &o :
                 litmus::enumerateBehaviors(test.program, kX86))
                x86_behaviors.insert(normalizeOutcome(test.program, o));

            const auto stress = runStress(test.program, config, 150);
            EXPECT_EQ(stress.unfinished, 0u) << test.program.name;
            EXPECT_GT(stress.runs(), 0u) << test.program.name;
            for (const auto &[outcome, count] : stress.histogram) {
                const litmus::Outcome norm =
                    normalizeOutcome(test.program, outcome);
                EXPECT_TRUE(x86_behaviors.count(norm))
                    << test.program.name << "/"
                    << mapping::rmwLoweringName(rmw)
                    << ": faulted run leaked non-x86 outcome "
                    << norm.toString();
            }
        }
    }
}

// --- Degraded modes ---------------------------------------------------------

TEST(GuardedTranslation, TinyCodeBufferStillRunsCorrectly)
{
    // A code buffer too small to hold the working set forces cache
    // flushes and interpreter fallbacks; results must not change.
    WorkloadSpec spec = workloads::workloadByName("wordcount");
    spec.iterations = 60;
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

    const DbtConfig clean = DbtConfig::risotto();
    std::vector<ThreadSpec> threads(2);
    threads[1].regs[0] = 1;
    Dbt reference(image, clean);
    const auto expected = reference.run(threads);
    ASSERT_TRUE(expected.finished);

    DbtConfig tiny = clean;
    tiny.codeBufferCapacity = 48;
    Dbt engine(image, tiny);
    const auto result = engine.run(threads);
    expectSameGuestState(expected, result, "tiny-buffer");
    EXPECT_GT(result.stats.get("dbt.buffer_full"), 0u);
    EXPECT_GT(result.stats.get("dbt.tb_flushes") + result.fallbackBlocks,
              0u);
}

TEST(GuardedTranslation, PermanentDecodeFaultDegradesToInterpreter)
{
    // Decode faults at rate 1.0 defeat every translation attempt: the
    // whole program must execute through the per-block interpreter
    // fallback, still producing the fault-free results.
    WorkloadSpec spec = workloads::workloadByName("freqmine");
    spec.iterations = 40;
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

    const DbtConfig clean = DbtConfig::risotto();
    std::vector<ThreadSpec> threads(2);
    threads[1].regs[0] = 1;
    Dbt reference(image, clean);
    const auto expected = reference.run(threads);
    ASSERT_TRUE(expected.finished);

    DbtConfig faulty = clean;
    faulty.faults.seed = 7;
    faulty.faults.siteRates[faultsites::DbtDecode] = 1.0;
    Dbt engine(image, faulty);
    const auto result = engine.run(threads);
    expectSameGuestState(expected, result, "permanent-decode-fault");
    EXPECT_GT(result.fallbackBlocks, 0u);
    EXPECT_EQ(result.stats.get("dbt.tbs_translated"), 0u);
}

TEST(GuardedTranslation, FaultedRunReportsDiagnosisAndCounters)
{
    WorkloadSpec spec = workloads::workloadByName("kmeans");
    spec.iterations = 40;
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);
    DbtConfig config = DbtConfig::risotto();
    config.faults = aggressivePlan();
    Dbt engine(image, config);
    const auto result = engine.run({ThreadSpec{}});
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(result.diagnosis, machine::RunDiagnosis::Finished);
    // The merged stats expose the per-site counters to callers.
    EXPECT_GT(result.stats.get("fault.dbt.decode.injected") +
                  result.stats.get("fault.dbt.encode.injected") +
                  result.stats.get("fault.dbt.buffer.injected"),
              0u);
}

} // namespace
