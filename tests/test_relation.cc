/**
 * @file
 * Unit and property tests for the relation algebra in memcore.
 */

#include <gtest/gtest.h>

#include "memcore/relation.hh"
#include "support/rng.hh"

namespace
{

using risotto::Rng;
using risotto::memcore::EventId;
using risotto::memcore::EventSet;
using risotto::memcore::Relation;

TEST(EventSet, BasicOperations)
{
    EventSet s(70);
    EXPECT_TRUE(s.empty());
    s.insert(0);
    s.insert(63);
    s.insert(64);
    s.insert(69);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_TRUE(s.contains(63));
    EXPECT_TRUE(s.contains(64));
    EXPECT_FALSE(s.contains(1));
    s.erase(63);
    EXPECT_FALSE(s.contains(63));
    EXPECT_EQ(s.count(), 3u);
}

TEST(EventSet, SetAlgebra)
{
    EventSet a(10), b(10);
    a.insert(1);
    a.insert(2);
    b.insert(2);
    b.insert(3);
    EXPECT_EQ((a | b).count(), 3u);
    EXPECT_EQ((a & b).count(), 1u);
    EXPECT_TRUE((a & b).contains(2));
    EXPECT_EQ((a - b).count(), 1u);
    EXPECT_TRUE((a - b).contains(1));
    EXPECT_EQ(a.complement().count(), 8u);
}

TEST(Relation, InsertEraseContains)
{
    Relation r(5);
    EXPECT_TRUE(r.empty());
    r.insert(0, 1);
    r.insert(1, 2);
    EXPECT_TRUE(r.contains(0, 1));
    EXPECT_FALSE(r.contains(1, 0));
    EXPECT_EQ(r.pairCount(), 2u);
    r.erase(0, 1);
    EXPECT_FALSE(r.contains(0, 1));
}

TEST(Relation, Composition)
{
    Relation r(4), s(4);
    r.insert(0, 1);
    r.insert(2, 3);
    s.insert(1, 2);
    s.insert(3, 0);
    const Relation rs = r.compose(s);
    EXPECT_TRUE(rs.contains(0, 2));
    EXPECT_TRUE(rs.contains(2, 0));
    EXPECT_EQ(rs.pairCount(), 2u);
}

TEST(Relation, TransitiveClosure)
{
    Relation r(4);
    r.insert(0, 1);
    r.insert(1, 2);
    r.insert(2, 3);
    const Relation tc = r.transitiveClosure();
    EXPECT_TRUE(tc.contains(0, 3));
    EXPECT_TRUE(tc.contains(0, 2));
    EXPECT_TRUE(tc.contains(1, 3));
    EXPECT_FALSE(tc.contains(3, 0));
    EXPECT_EQ(tc.pairCount(), 6u);
}

TEST(Relation, AcyclicityDetectsCycles)
{
    Relation r(3);
    r.insert(0, 1);
    r.insert(1, 2);
    EXPECT_TRUE(r.acyclic());
    r.insert(2, 0);
    EXPECT_FALSE(r.acyclic());
    EXPECT_TRUE(r.irreflexive()); // No self loops even though cyclic.
}

TEST(Relation, IdentityAndRestriction)
{
    EventSet s(5);
    s.insert(1);
    s.insert(3);
    const Relation id = Relation::identityOn(s);
    EXPECT_TRUE(id.contains(1, 1));
    EXPECT_TRUE(id.contains(3, 3));
    EXPECT_EQ(id.pairCount(), 2u);

    Relation r(5);
    r.insert(1, 2);
    r.insert(3, 2);
    r.insert(2, 3);
    EXPECT_EQ(r.restrictDomain(s).pairCount(), 2u);
    EXPECT_EQ(r.restrictCodomain(s).pairCount(), 1u);
    EXPECT_TRUE(r.restrictCodomain(s).contains(2, 3));
}

TEST(Relation, DomainCodomainInverse)
{
    Relation r(5);
    r.insert(0, 2);
    r.insert(1, 2);
    EXPECT_EQ(r.domain().count(), 2u);
    EXPECT_EQ(r.codomain().count(), 1u);
    EXPECT_TRUE(r.codomain().contains(2));
    const Relation inv = r.inverse();
    EXPECT_TRUE(inv.contains(2, 0));
    EXPECT_TRUE(inv.contains(2, 1));
}

TEST(Relation, CrossProduct)
{
    EventSet a(4), b(4);
    a.insert(0);
    a.insert(1);
    b.insert(2);
    const Relation x = Relation::cross(a, b);
    EXPECT_EQ(x.pairCount(), 2u);
    EXPECT_TRUE(x.contains(0, 2));
    EXPECT_TRUE(x.contains(1, 2));
}

TEST(Relation, Functional)
{
    Relation r(4);
    r.insert(0, 1);
    r.insert(2, 3);
    EXPECT_TRUE(r.functional());
    r.insert(0, 2);
    EXPECT_FALSE(r.functional());
}

/** Property: closure is idempotent and monotone, composition associates. */
TEST(RelationProperty, AlgebraLaws)
{
    Rng rng(42);
    for (int iter = 0; iter < 50; ++iter) {
        const std::size_t n = 2 + rng.below(8);
        Relation a(n), b(n), c(n);
        for (std::size_t i = 0; i < n * 2; ++i) {
            a.insert(static_cast<EventId>(rng.below(n)),
                     static_cast<EventId>(rng.below(n)));
            b.insert(static_cast<EventId>(rng.below(n)),
                     static_cast<EventId>(rng.below(n)));
            c.insert(static_cast<EventId>(rng.below(n)),
                     static_cast<EventId>(rng.below(n)));
        }
        // Closure idempotence.
        const Relation tc = a.transitiveClosure();
        EXPECT_TRUE(tc.transitiveClosure() == tc);
        // Composition associativity.
        EXPECT_TRUE(a.compose(b).compose(c) == a.compose(b.compose(c)));
        // Union commutativity / distribution over composition domain.
        EXPECT_TRUE((a | b) == (b | a));
        EXPECT_TRUE((a | b).compose(c) == (a.compose(c) | b.compose(c)));
        // Inverse is involutive.
        EXPECT_TRUE(a.inverse().inverse() == a);
    }
}

} // namespace
