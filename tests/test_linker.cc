/**
 * @file
 * Tests for the dynamic host linker (Section 6.2): IDL parsing, .dynsym
 * scanning, marshalling, differential equality between host-linked and
 * translated-guest executions of the same library functions, and the
 * performance ordering the linker exists to provide.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "hostlib/hostlib.hh"
#include "linker/hostlinker.hh"
#include "linker/idl.hh"
#include "support/error.hh"

namespace
{

using namespace risotto;
using namespace risotto::gx86;
using namespace risotto::linker;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

TEST(Idl, ParsesPrototypes)
{
    const auto sigs = parseIdl("# comment\n"
                               "double sin(double);\n"
                               "u64 md5(ptr, i64);\n"
                               "void notify(void);\n"
                               "i64 answer();\n");
    ASSERT_EQ(sigs.size(), 4u);
    EXPECT_EQ(sigs[0].toString(), "double sin(double)");
    EXPECT_EQ(sigs[1].toString(), "u64 md5(ptr, i64)");
    EXPECT_EQ(sigs[2].toString(), "void notify()");
    EXPECT_EQ(sigs[3].args.size(), 0u);
}

TEST(Idl, RejectsGarbage)
{
    EXPECT_THROW(parseIdl("double sin"), FatalError);
    EXPECT_THROW(parseIdl("mystery sin(double);"), FatalError);
    EXPECT_THROW(parseIdl("double (double);"), FatalError);
}

TEST(Idl, FullLibraryIdlParses)
{
    const auto sigs = parseIdl(hostlib::fullIdl());
    EXPECT_GE(sigs.size(), 15u);
}

TEST(HostLinker, ScanFindsOnlyDescribedAndAvailable)
{
    HostLibraryRegistry registry;
    hostlib::registerMathLibrary(registry);

    Assembler a;
    a.defineSymbol("main");
    a.hlt();
    a.importFunction("sin");       // Described + available.
    a.importFunction("mystery");   // Not described.
    a.importFunction("md5");       // Described but library not loaded.
    const GuestImage image = a.finish("main");

    HostLinker linker(parseIdl(hostlib::fullIdl()), registry);
    EXPECT_EQ(linker.scanImage(image), 1u);
    EXPECT_TRUE(linker.resolve("sin").has_value());
    EXPECT_FALSE(linker.resolve("mystery").has_value());
    EXPECT_FALSE(linker.resolve("md5").has_value());
}

/** Build an image that digests a buffer through `fn` and stores r0. */
GuestImage
digestImage(const std::string &fn, std::size_t len, Addr *out_addr,
            Addr *buf_addr)
{
    Assembler a;
    const Addr out = a.dataReserve(8);
    std::vector<std::uint8_t> buf(len);
    for (std::size_t i = 0; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 131 + 17);
    const Addr data = a.dataBytes(buf);
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    hostlib::emitGuestCryptoLibrary(a);
    a.bind(start);
    a.movri(1, static_cast<std::int64_t>(data));
    a.movri(2, static_cast<std::int64_t>(len));
    a.callImport(fn);
    a.movri(3, static_cast<std::int64_t>(out));
    a.store(3, 0, 0);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    *out_addr = out;
    *buf_addr = data;
    return a.finish("main");
}

TEST(HostLinker, DigestsMatchBetweenLinkedAndTranslated)
{
    HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);
    const auto idl = parseIdl(hostlib::fullIdl());

    for (const std::string fn : {"md5", "sha1", "sha256"}) {
        Addr out = 0;
        Addr buf = 0;
        const GuestImage image = digestImage(fn, 256, &out, &buf);

        // Reference value.
        std::vector<std::uint8_t> data(256);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(i * 131 + 17);
        std::uint64_t expected = 0;
        if (fn == "md5")
            expected = hostlib::referenceMd5(data.data(), data.size());
        else if (fn == "sha1")
            expected = hostlib::referenceSha1(data.data(), data.size());
        else
            expected = hostlib::referenceSha256(data.data(), data.size());

        // Translated guest library (tcg-ver: linker off).
        Dbt translated(image, DbtConfig::tcgVer());
        const auto guest_result = translated.run({ThreadSpec{}});
        ASSERT_TRUE(guest_result.finished);
        EXPECT_EQ(guest_result.memory->load64(out), expected) << fn;

        // Host-linked native library.
        HostLinker linker(idl, registry);
        ASSERT_GE(linker.scanImage(image), 1u);
        Dbt linked(image, DbtConfig::risotto(), &linker, &linker);
        const auto host_result = linked.run({ThreadSpec{}});
        ASSERT_TRUE(host_result.finished);
        EXPECT_EQ(host_result.memory->load64(out), expected) << fn;

        // And the whole point: the linked run is much faster.
        EXPECT_LT(host_result.makespan, guest_result.makespan) << fn;
    }
}

TEST(HostLinker, RsaTwinsMatch)
{
    HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);
    const auto idl = parseIdl(hostlib::fullIdl());

    for (const bool sign : {true, false}) {
        Assembler a;
        const Addr out = a.dataReserve(8);
        const auto start = a.newLabel();
        a.defineSymbol("main");
        a.jmp(start);
        hostlib::emitGuestCryptoLibrary(a);
        a.bind(start);
        a.movri(1, 0x123456789);
        a.movri(2, 128); // iteration parameter ("bits")
        a.callImport(sign ? "rsa_sign" : "rsa_verify");
        a.movri(3, static_cast<std::int64_t>(out));
        a.store(3, 0, 0);
        a.movri(0, 0);
        a.movri(1, 0);
        a.syscall();
        const GuestImage image = a.finish("main");

        const std::uint64_t expected =
            hostlib::referenceModExp(0x123456789, 128, sign);

        Dbt translated(image, DbtConfig::tcgVer());
        EXPECT_EQ(translated.run({ThreadSpec{}}).memory->load64(out),
                  expected);

        HostLinker linker(idl, registry);
        linker.scanImage(image);
        Dbt linked(image, DbtConfig::risotto(), &linker, &linker);
        EXPECT_EQ(linked.run({ThreadSpec{}}).memory->load64(out),
                  expected);
    }
}

TEST(HostLinker, SqliteTwinsMatch)
{
    HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);
    const auto idl = parseIdl(hostlib::fullIdl());

    Assembler a;
    const Addr out = a.dataReserve(8);
    const std::size_t table_len = 64;
    const Addr table = a.dataReserve(table_len * 8);
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    hostlib::emitGuestSqliteLibrary(a);
    a.bind(start);
    // Fill the sorted table: table[i] = 2*i.
    a.movri(4, static_cast<std::int64_t>(table));
    a.movri(5, 0);
    for (std::size_t i = 0; i < table_len; ++i) {
        a.store(4, static_cast<std::int32_t>(i * 8), 5);
        a.addi(5, 2);
    }
    a.movri(1, static_cast<std::int64_t>(table));
    a.movri(2, static_cast<std::int64_t>(table_len));
    a.movri(3, 50);   // ops
    a.movri(4, 42);   // seed
    a.callImport("sqlite_exec");
    a.movri(3, static_cast<std::int64_t>(out));
    a.store(3, 0, 0);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    Dbt translated(image, DbtConfig::tcgVer());
    const auto guest_result = translated.run({ThreadSpec{}});
    ASSERT_TRUE(guest_result.finished);

    HostLinker linker(idl, registry);
    linker.scanImage(image);
    Dbt linked(image, DbtConfig::risotto(), &linker, &linker);
    const auto host_result = linked.run({ThreadSpec{}});
    ASSERT_TRUE(host_result.finished);

    EXPECT_EQ(host_result.memory->load64(out),
              guest_result.memory->load64(out));
    EXPECT_NE(host_result.memory->load64(out), 0u);
}

TEST(HostLinker, GuestMathKernelsAreAccurate)
{
    // The guest polynomial libm must agree with the host libm to ~1e-6
    // on the benchmark input range.
    HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);

    struct Case
    {
        const char *name;
        double arg;
        double expected;
    };
    const Case cases[] = {
        {"sin", 0.7, std::sin(0.7)},    {"cos", 0.7, std::cos(0.7)},
        {"tan", 0.6, std::tan(0.6)},    {"exp", 0.9, std::exp(0.9)},
        {"log", 1.4, std::log(1.4)},    {"sqrt", 2.0, std::sqrt(2.0)},
        {"asin", 0.4, std::asin(0.4)},  {"acos", 0.4, std::acos(0.4)},
        {"atan", 0.5, std::atan(0.5)},
    };
    for (const Case &c : cases) {
        Assembler a;
        const Addr out = a.dataReserve(8);
        const auto start = a.newLabel();
        a.defineSymbol("main");
        a.jmp(start);
        hostlib::emitGuestMathLibrary(a);
        a.bind(start);
        a.movfd(1, c.arg);
        a.callImport(c.name);
        a.movri(3, static_cast<std::int64_t>(out));
        a.store(3, 0, 0);
        a.movri(0, 0);
        a.movri(1, 0);
        a.syscall();
        const GuestImage image = a.finish("main");

        Dbt engine(image, DbtConfig::tcgVer());
        const auto result = engine.run({ThreadSpec{}});
        ASSERT_TRUE(result.finished) << c.name;
        double got;
        const std::uint64_t bits = result.memory->load64(out);
        std::memcpy(&got, &bits, sizeof(got));
        EXPECT_NEAR(got, c.expected, 2e-6) << c.name;
    }
}

TEST(HostLinker, UnusedLinkerHasNoOverhead)
{
    // Section 7.3: programs using no described imports must not slow
    // down when the linker is enabled.
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, 500);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.add(1, 2);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);
    HostLinker linker(parseIdl(hostlib::fullIdl()), registry);
    linker.scanImage(image);

    Dbt with_linker(image, DbtConfig::risotto(), &linker, &linker);
    Dbt without(image, DbtConfig::tcgVer());
    const auto with_result = with_linker.run({ThreadSpec{}});
    const auto without_result = without.run({ThreadSpec{}});
    EXPECT_EQ(with_result.makespan, without_result.makespan);
}

} // namespace
