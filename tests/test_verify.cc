/**
 * @file
 * Translation-validator tests: obligation-graph shapes, scheme audits
 * (no-fences and the Figure 3 desired mapping are flagged, Risotto is
 * clean), the deliberately-weakened-fence canary, and end-to-end
 * validation through the DBT engine at both block and superblock
 * granularity.
 */

#include <gtest/gtest.h>

#include <random>

#include "dbt/backend.hh"
#include "dbt/dbt.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "litmus/library.hh"
#include "risotto/stress.hh"
#include "tcg/optimizer.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;
using dbt::DbtConfig;
using gx86::Assembler;
using gx86::GuestImage;
using memcore::FenceKind;

/** Slot allocator for compiling outside an engine. */
struct DummySlots : dbt::ExitSlotAllocator
{
    std::uint32_t next = 1;
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t, aarch::CodeAddr,
                             bool) override
    {
        return next++;
    }
    std::uint32_t dynamicSlot() override { return 0; }
};

std::vector<gx86::Instruction>
decodeMain(const GuestImage &image)
{
    const DbtConfig config = DbtConfig::risotto();
    dbt::Frontend frontend(image, config, nullptr);
    return frontend.decodeBlock(image.entry);
}

/** Full static pipeline for one block under @p config: translate,
 * optimize, compile, validate. */
verify::ValidationReport
validateBlock(const GuestImage &image, DbtConfig config)
{
    dbt::Frontend frontend(image, config, nullptr);
    const auto guest = frontend.decodeBlock(image.entry);
    tcg::Block block = frontend.translate(image.entry);
    tcg::optimize(block, config.optimizer);
    aarch::CodeBuffer buffer;
    DummySlots slots;
    dbt::Backend backend(buffer, config);
    const aarch::CodeAddr entry = backend.compile(block, slots);
    const auto host = verify::decodeRange(buffer, entry, buffer.end());
    verify::ValidatorOptions vo;
    vo.rmw = config.rmw;
    const verify::TbValidator validator(vo);
    return validator.validate(guest, block, host, image.entry, false);
}

// --- Obligation graph shapes ------------------------------------------------

TEST(ObligationGraph, TsoPpoShapes)
{
    // r4 = [0x1000]; r5 = [0x2000]; [0x1000] = r6; [0x2000] = r7
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.load(4, 1, 0);
    a.load(5, 2, 0);
    a.store(1, 0, 6);
    a.store(2, 0, 7);
    a.hlt();
    const auto guest = decodeMain(a.finish("main"));
    const auto events = verify::guestEvents(guest);
    ASSERT_EQ(events.size(), 4u); // R, R, W, W
    const auto obligations = verify::obligationGraph(events);

    // ppo = ((W x W) U (R x W) U (R x R)) n po: everything except W -> R.
    EXPECT_TRUE(obligations.contains(0, 1));  // R -> R
    EXPECT_TRUE(obligations.contains(0, 2));  // R -> W
    EXPECT_TRUE(obligations.contains(2, 3));  // W -> W
    EXPECT_FALSE(obligations.contains(1, 0)); // Never against po.
}

TEST(ObligationGraph, MfenceImpliesStoreLoadOrder)
{
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.store(1, 0, 6);
    a.load(4, 2, 0);
    a.hlt();
    const auto noFence = verify::guestEvents(decodeMain(a.finish("main")));
    ASSERT_EQ(noFence.size(), 2u);
    // TSO lets the store-load pair reorder without a fence...
    EXPECT_FALSE(verify::obligationGraph(noFence).contains(0, 1));

    Assembler b;
    b.defineSymbol("main");
    b.movri(1, 0x1000);
    b.movri(2, 0x2000);
    b.store(1, 0, 6);
    b.mfence();
    b.load(4, 2, 0);
    b.hlt();
    const auto fenced = verify::guestEvents(decodeMain(b.finish("main")));
    ASSERT_EQ(fenced.size(), 3u); // W, F, R
    // ...and MFENCE restores it (implied = po;[F] U [F];po, closed).
    EXPECT_TRUE(verify::obligationGraph(fenced).contains(0, 2));
}

TEST(ObligationGraph, RmwIsCumulative)
{
    // W -> (lock xadd) -> R: the atomic op orders everything around it.
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.movri(3, 0x3000);
    a.store(1, 0, 6);
    a.lockXadd(2, 0, 7);
    a.load(4, 3, 0);
    a.hlt();
    const auto events = verify::guestEvents(decodeMain(a.finish("main")));
    ASSERT_EQ(events.size(), 4u); // W, R(rmw), W(rmw), R
    const auto obligations = verify::obligationGraph(events);
    EXPECT_TRUE(obligations.contains(0, 3)); // W -> R through the RMW.
}

// --- Scheme audits ----------------------------------------------------------

/** Two loads from provably different addresses: the minimal block whose
 * R -> R obligation a fence-free translation cannot carry. */
GuestImage
twoLoadImage()
{
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.load(4, 1, 0);
    a.load(5, 2, 0);
    a.hlt();
    return a.finish("main");
}

TEST(SchemeAudit, NoFencesIsFlaggedWithNamedPair)
{
    const auto report =
        validateBlock(twoLoadImage(), DbtConfig::qemuNoFences());
    ASSERT_FALSE(report.ok());
    const verify::Violation &v = report.violations.front();
    EXPECT_FALSE(v.from.empty());
    EXPECT_FALSE(v.to.empty());
    EXPECT_NE(v.missingFence, FenceKind::None);
    EXPECT_NE(v.toString().find("->"), std::string::npos);
}

TEST(SchemeAudit, VerifiedSchemesAreClean)
{
    for (const DbtConfig &config :
         {DbtConfig::risotto(), DbtConfig::tcgVer(), DbtConfig::qemu()}) {
        const auto report = validateBlock(twoLoadImage(), config);
        EXPECT_TRUE(report.ok()) << config.name;
        EXPECT_GT(report.pairsChecked, 0u) << config.name;
    }
}

TEST(SchemeAudit, RisottoCleanOverRandomBlocks)
{
    std::mt19937_64 rng(99);
    auto pick = [&](int n) { return static_cast<int>(rng() % n); };
    for (int block = 0; block < 40; ++block) {
        Assembler a;
        a.defineSymbol("main");
        const int count = 4 + pick(10);
        for (int i = 0; i < count; ++i) {
            const auto base = static_cast<gx86::Reg>(pick(3));
            const auto reg = static_cast<gx86::Reg>(4 + pick(4));
            const auto off = static_cast<std::int32_t>(8 * pick(6));
            switch (pick(6)) {
              case 0:
                a.load(reg, base, off);
                break;
              case 1:
                a.store(base, off, reg);
                break;
              case 2:
                a.lockXadd(base, off, reg);
                break;
              case 3:
                a.mfence();
                break;
              case 4:
                a.movri(base, 0x1000 + 8 * pick(8));
                break;
              default:
                a.add(reg, reg);
                break;
            }
        }
        a.hlt();
        const GuestImage image = a.finish("main");
        const auto report = validateBlock(image, DbtConfig::risotto());
        EXPECT_TRUE(report.ok()) << "random block " << block;
    }
}

TEST(SchemeAudit, Figure3DesiredMappingFlaggedUnderOriginalAmoRule)
{
    // The paper's report against Arm-Cats: an RMW followed by a load of
    // another location loses its ordering under the *original* amo
    // clause, while the corrected clause (and real hardware) keeps it.
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.lockXadd(1, 0, 4);
    a.load(5, 2, 0);
    a.hlt();
    const auto guest = decodeMain(a.finish("main"));
    const auto desired = verify::desiredArmEvents(guest);

    verify::ValidatorOptions original;
    original.amoRule = models::ArmModel::AmoRule::Original;
    const auto flagged = verify::TbValidator(original).checkAgainst(
        guest, desired, verify::Level::Arm, 0);
    EXPECT_FALSE(flagged.ok());

    verify::ValidatorOptions corrected;
    corrected.amoRule = models::ArmModel::AmoRule::Corrected;
    const auto clean = verify::TbValidator(corrected).checkAgainst(
        guest, desired, verify::Level::Arm, 0);
    EXPECT_TRUE(clean.ok());
}

TEST(SchemeAudit, HelperRmw2IsFlaggedHelperRmw1IsNot)
{
    // The GCC-9 QEMU bug (Section 3): an exclusive-pair helper does not
    // order the RMW against a later load of another location.
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.lockXadd(1, 0, 4);
    a.load(5, 2, 0);
    a.hlt();
    const GuestImage image = a.finish("main");

    DbtConfig broken = DbtConfig::qemu();
    broken.rmw = mapping::RmwLowering::HelperRmw2AL;
    EXPECT_FALSE(validateBlock(image, broken).ok());

    EXPECT_TRUE(validateBlock(image, DbtConfig::qemu()).ok());
}

// --- The weakened-fence canary ----------------------------------------------

TEST(WeakenedFence, DeliberateWeakeningIsCaughtAtTranslationTime)
{
    // ld; Frm; Fww; st -- the R -> W obligation rides on the Frm.
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0x1000);
    a.movri(2, 0x2000);
    a.load(4, 1, 0);
    a.store(2, 0, 5);
    a.hlt();
    const GuestImage image = a.finish("main");

    DbtConfig config = DbtConfig::risotto();
    config.optimizer.fenceMerging = false; // Keep Frm and Fww distinct.
    dbt::Frontend frontend(image, config, nullptr);
    const auto guest = frontend.decodeBlock(image.entry);
    tcg::Block block = frontend.translate(image.entry);
    tcg::optimize(block, config.optimizer);

    verify::ValidatorOptions vo;
    vo.rmw = config.rmw;
    const verify::TbValidator validator(vo);

    auto compileAndValidate = [&]() {
        aarch::CodeBuffer buffer;
        DummySlots slots;
        dbt::Backend backend(buffer, config);
        const aarch::CodeAddr entry = backend.compile(block, slots);
        const auto host = verify::decodeRange(buffer, entry, buffer.end());
        return validator.validate(guest, block, host, image.entry, false);
    };

    ASSERT_TRUE(compileAndValidate().ok());

    // Weaken the load's trailing Frm to Facq (orders nothing here).
    bool weakened = false;
    for (tcg::Instr &in : block.instrs)
        if (in.op == tcg::Op::Mb && in.fence == FenceKind::Frm) {
            in.fence = FenceKind::Facq;
            weakened = true;
            break;
        }
    ASSERT_TRUE(weakened);

    const auto report = compileAndValidate();
    ASSERT_FALSE(report.ok());
    bool saw_tcg = false;
    bool saw_arm = false;
    for (const auto &v : report.violations) {
        saw_tcg = saw_tcg || v.level == verify::Level::Tcg;
        saw_arm = saw_arm || v.level == verify::Level::Arm;
        EXPECT_NE(v.missingFence, FenceKind::None);
    }
    EXPECT_TRUE(saw_tcg); // The IR itself lost the ordering...
    EXPECT_TRUE(saw_arm); // ...and so did the code compiled from it.
}

// --- End-to-end through the engine ------------------------------------------

TEST(DbtValidation, RisottoRunsCleanNoFencesIsCaught)
{
    Assembler a;
    const gx86::Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(1, static_cast<std::int64_t>(buf));
    a.movri(2, static_cast<std::int64_t>(buf) + 32);
    a.load(4, 1, 0);
    a.load(5, 2, 0);
    a.store(1, 8, 4);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    DbtConfig clean = DbtConfig::risotto();
    clean.validateTranslations = true;
    dbt::Dbt engine(image, clean);
    const auto result = engine.run({dbt::ThreadSpec{}});
    ASSERT_TRUE(result.finished);
    EXPECT_GT(result.stats.get("verify.blocks_checked"), 0u);
    EXPECT_EQ(result.validationViolations, 0u);
    EXPECT_TRUE(engine.violations().empty());

    DbtConfig broken = DbtConfig::qemuNoFences();
    broken.validateTranslations = true;
    dbt::Dbt flagged(image, broken);
    const auto bad = flagged.run({dbt::ThreadSpec{}});
    ASSERT_TRUE(bad.finished); // Validation reports, never blocks tier 1.
    EXPECT_GT(bad.validationViolations, 0u);
    ASSERT_FALSE(flagged.violations().empty());
    EXPECT_NE(flagged.violations().front().missingFence, FenceKind::None);
}

TEST(DbtValidation, SuperblocksAreValidatedAndStayClean)
{
    // An 80-store loop body overflows the 64-instruction block cap, so
    // tier 2 splices a multi-block superblock and the cross-seam
    // optimizer eliminates stores + fences -- all of which the validator
    // must accept (eliminated accesses discharge their obligations).
    Assembler a;
    const gx86::Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(4, 7);
    a.movri(2, 400);
    const auto loop = a.newLabel();
    a.bind(loop);
    for (int k = 0; k < 80; ++k)
        a.store(3, 0, 4);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    const GuestImage image = a.finish("main");

    DbtConfig config = DbtConfig::risotto();
    config.validateTranslations = true;
    dbt::Dbt engine(image, config);
    const auto result = engine.run({dbt::ThreadSpec{}});
    ASSERT_TRUE(result.finished);
    EXPECT_GE(result.tier2Superblocks, 1u);
    EXPECT_GT(result.stats.get("verify.superblocks_checked"), 0u);
    EXPECT_EQ(result.stats.get("verify.promotions_rejected"), 0u);
    EXPECT_EQ(result.validationViolations, 0u);
}

// --- Validation sweeps (the risotto-run --validate acceptance runs) ---------

TEST(ValidationSweep, AllWorkloadsValidateClean)
{
    for (workloads::WorkloadSpec spec : workloads::fullSuite()) {
        spec.iterations = 60; // Enough to translate (and promote) all.
        const GuestImage image = workloads::buildGuestWorkload(spec);
        DbtConfig config = DbtConfig::risotto();
        config.validateTranslations = true;
        config.tier2Threshold = 4; // Exercise superblock validation too.
        dbt::Dbt engine(image, config);
        std::vector<dbt::ThreadSpec> threads(2);
        threads[1].regs[0] = 1;
        const auto result = engine.run(threads);
        ASSERT_TRUE(result.finished) << spec.name;
        EXPECT_GT(result.stats.get("verify.blocks_checked"), 0u)
            << spec.name;
        EXPECT_EQ(result.validationViolations, 0u) << spec.name;
    }
}

TEST(ValidationSweep, LitmusCorpusValidatesClean)
{
    for (const litmus::LitmusTest &test : litmus::x86Corpus()) {
        const GuestImage image = buildStressImage(test.program);
        DbtConfig config = DbtConfig::risotto();
        config.validateTranslations = true;
        dbt::Dbt engine(image, config);
        std::vector<dbt::ThreadSpec> threads(test.program.threads.size());
        for (std::size_t t = 0; t < threads.size(); ++t)
            threads[t].regs[0] = t;
        const auto result = engine.run(threads);
        ASSERT_TRUE(result.finished) << test.program.name;
        EXPECT_GT(result.stats.get("verify.blocks_checked"), 0u)
            << test.program.name;
        EXPECT_EQ(result.validationViolations, 0u) << test.program.name;
    }
}

} // namespace
