/**
 * @file
 * Serving-layer tests: copy-on-write memory forks, admission control
 * and load shedding, per-session fault containment with retry/backoff,
 * budget eviction, the degradation ladder, failure-taxonomy
 * completeness, unified tool exit codes, and the determinism contract
 * (a concurrent fleet is bit-identical to its serial reference, and
 * non-faulted sessions are bit-identical to a plain engine run).
 *
 * The fleet tests run >= 32 sessions on a multi-worker pool and are
 * part of the ThreadSanitizer CI job: sessions share one frozen
 * artifact, so any mutable touch of shared state is a reportable race.
 */

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "gx86/memory.hh"
#include "persist/snapshot.hh"
#include "serve/manager.hh"
#include "support/backoff.hh"
#include "support/error.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;

/** A guest that loads, accumulates, stores, prints a digest char and
 * exits with its thread id: every serve behaviour (COW dirtying,
 * output capture, exit codes) is observable. */
gx86::GuestImage
serveGuest()
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(256);
    a.defineSymbol("main");
    a.movrr(5, 0); // Keep the thread id (r0 on entry).
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(1, 0);
    a.movri(2, 25);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.load(4, 3, 0);
    a.add(1, 4);
    a.store(3, 8, 1);
    a.addi(1, 2);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.andi(1, 7);
    a.addi(1, 'A');
    a.movri(0, 1); // putchar(r1)
    a.syscall();
    a.movri(0, 0); // exit(r5)
    a.movrr(1, 5);
    a.syscall();
    return a.finish("main");
}

constexpr std::size_t GuestThreads = 2;

/** Plain-engine reference for the same image: what one tenant sees
 * without the serving layer. */
dbt::RunResult
plainReference(const gx86::GuestImage &image)
{
    dbt::Dbt engine(image, dbt::DbtConfig::risotto());
    std::vector<dbt::ThreadSpec> threads(GuestThreads);
    for (std::size_t t = 0; t < GuestThreads; ++t)
        threads[t].regs[0] = t;
    return engine.run(threads);
}

serve::ServeConfig
fleetConfig(std::size_t sessions, std::size_t jobs)
{
    serve::ServeConfig config;
    config.sessions = sessions;
    config.jobs = jobs;
    config.session.threads = GuestThreads;
    return config;
}

bool
sameSession(const serve::SessionResult &a, const serve::SessionResult &b)
{
    return a.id == b.id && a.kind == b.kind && a.finished == b.finished &&
           a.attempts == b.attempts && a.exitCodes == b.exitCodes &&
           a.outputs == b.outputs && a.makespan == b.makespan &&
           a.backoffCycles == b.backoffCycles && a.latency == b.latency &&
           a.dirtyPages == b.dirtyPages;
}

// --- Copy-on-write memory -------------------------------------------

TEST(CowMemory, ForkSharesReadsUntilWritten)
{
    auto parent = std::make_shared<gx86::Memory>(std::size_t{1} << 16);
    const_cast<gx86::Memory &>(*parent).store64(0x100, 0xdeadbeef);
    gx86::Memory fork = gx86::Memory::fork(parent);
    EXPECT_TRUE(fork.forked());
    EXPECT_EQ(fork.load64(0x100), 0xdeadbeefu);
    EXPECT_EQ(fork.dirtyPages(), 0u);

    fork.store64(0x100, 42);
    EXPECT_EQ(fork.dirtyPages(), 1u);
    EXPECT_EQ(fork.load64(0x100), 42u);
    EXPECT_EQ(parent->load64(0x100), 0xdeadbeefu) << "parent mutated";

    // The rest of the dirtied page still reads the parent's bytes.
    EXPECT_EQ(fork.load64(0x108), parent->load64(0x108));
}

TEST(CowMemory, RollbackIsRefork)
{
    auto parent = std::make_shared<gx86::Memory>(std::size_t{1} << 16);
    const_cast<gx86::Memory &>(*parent).store8(0x10, 7);
    gx86::Memory first = gx86::Memory::fork(parent);
    first.store8(0x10, 99);
    gx86::Memory retry = gx86::Memory::fork(parent);
    EXPECT_EQ(retry.load8(0x10), 7u);
    EXPECT_EQ(retry.dirtyPages(), 0u);
}

TEST(CowMemory, ConstRawOnCleanRangeDoesNotFlatten)
{
    auto parent = std::make_shared<gx86::Memory>(std::size_t{1} << 16);
    const_cast<gx86::Memory &>(*parent).store8(0x2000, 0x5a);
    gx86::Memory fork = gx86::Memory::fork(parent);
    fork.store8(0x0, 1); // Dirty page 0 only.

    const gx86::Memory &view = fork;
    EXPECT_EQ(view.raw(0x2000, 16)[0], 0x5a);
    EXPECT_TRUE(fork.forked()) << "read-only raw flattened the fork";

    // A range overlapping the private page needs the flat view.
    EXPECT_EQ(view.raw(0x0, 8)[0], 1);
    EXPECT_FALSE(fork.forked());
    EXPECT_EQ(fork.load8(0x2000), 0x5au);
}

TEST(CowMemory, MutableRawFlattensWithPrivatePages)
{
    auto parent = std::make_shared<gx86::Memory>(std::size_t{1} << 16);
    gx86::Memory fork = gx86::Memory::fork(parent);
    fork.store8(0x42, 9);
    std::uint8_t *bytes = fork.raw(0x40, 8);
    EXPECT_FALSE(fork.forked());
    EXPECT_EQ(bytes[2], 9u);
}

// --- Admission control ----------------------------------------------

TEST(Admission, BoundedQueueShedsBeyondCapacity)
{
    serve::AdmissionPolicy policy;
    policy.queueCapacity = 2;
    EXPECT_EQ(policy.admitted(10, 4), 6u);
    EXPECT_EQ(policy.admitted(3, 4), 3u);
    EXPECT_EQ(policy.admitted(10, 0), 3u) << "0 jobs runs one worker";
    policy.queueCapacity = 0;
    EXPECT_EQ(policy.admitted(10, 4), 10u) << "0 = unbounded";
}

TEST(Admission, ShedSessionsAreClassifiedDeterministically)
{
    const gx86::GuestImage image = serveGuest();
    const serve::SharedArtifact artifact(image);
    serve::ServeConfig config = fleetConfig(12, 2);
    config.admission.queueCapacity = 3;
    const serve::ServeReport report = serve::runSessions(artifact, config);
    EXPECT_EQ(report.shed, 7u);
    EXPECT_EQ(report.succeeded, 5u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_TRUE(report.allSucceeded());
    for (const serve::SessionResult &s : report.sessions) {
        // Deterministic shedding: highest ids shed, admitted prefix runs.
        EXPECT_EQ(s.kind == serve::FailureKind::Shed, s.id >= 5)
            << "session " << s.id;
        if (s.kind == serve::FailureKind::Shed) {
            EXPECT_EQ(s.attempts, 0u);
        }
    }
    EXPECT_EQ(report.stats.get("serve.sessions_shed"), 7u);
    EXPECT_EQ(report.stats.get("serve.sessions_admitted"), 5u);
}

// --- Retry / backoff -------------------------------------------------

TEST(Backoff, WindowsDoubleJitteredAndCapped)
{
    support::RetryPolicy policy;
    policy.baseDelay = 100;
    policy.capDelay = 400;
    Rng rng(42);
    for (unsigned attempt = 1; attempt <= 6; ++attempt) {
        std::uint64_t window = policy.baseDelay << (attempt - 1);
        if (window > policy.capDelay)
            window = policy.capDelay;
        const std::uint64_t delay = policy.delayFor(attempt, rng);
        EXPECT_GE(delay, window / 2) << "attempt " << attempt;
        EXPECT_LE(delay, window) << "attempt " << attempt;
    }

    // Same seed, same schedule.
    Rng a(7), b(7);
    for (unsigned attempt = 1; attempt <= 4; ++attempt)
        EXPECT_EQ(policy.delayFor(attempt, a), policy.delayFor(attempt, b));
}

TEST(Backoff, SessionStreamsAreIndependent)
{
    EXPECT_NE(deriveStream(1, 0), deriveStream(1, 1));
    EXPECT_NE(deriveStream(1, 0), deriveStream(2, 0));
    EXPECT_NE(deriveStream(0, 0), 0u) << "stream must never be zero";
}

// --- Failure taxonomy / exit codes ----------------------------------

TEST(Taxonomy, EveryKindHasUniqueNameAndStat)
{
    std::vector<std::string> names;
    std::vector<std::string> stats;
    for (const serve::FailureKind kind : serve::AllFailureKinds) {
        const std::string name = serve::failureKindName(kind);
        const std::string stat = serve::failureKindStat(kind);
        EXPECT_FALSE(name.empty());
        EXPECT_EQ(stat.rfind("serve.", 0), 0u) << stat;
        for (const std::string &seen : names)
            EXPECT_NE(seen, name);
        for (const std::string &seen : stats)
            EXPECT_NE(seen, stat);
        names.push_back(name);
        stats.push_back(stat);
    }
}

TEST(Taxonomy, UnifiedToolExitCodes)
{
    EXPECT_EQ(toolExitCode(ToolExit::Ok), 0);
    EXPECT_EQ(toolExitCode(ToolExit::RuntimeError), 1);
    EXPECT_EQ(toolExitCode(ToolExit::Usage), 2);
    EXPECT_EQ(toolExitCode(ToolExit::ValidatorViolation), 3);
    EXPECT_EQ(toolExitCode(ToolExit::BudgetExhausted), 4);
}

// --- Sessions over a shared artifact --------------------------------

TEST(Serve, SessionsMatchThePlainEngine)
{
    const gx86::GuestImage image = serveGuest();
    const dbt::RunResult reference = plainReference(image);
    ASSERT_TRUE(reference.finished);

    const serve::SharedArtifact artifact(image);
    EXPECT_EQ(artifact.mode(), serve::ArtifactMode::Cold);
    const serve::ServeReport report =
        serve::runSessions(artifact, fleetConfig(8, 2));
    EXPECT_EQ(report.succeeded, 8u);
    for (const serve::SessionResult &s : report.sessions) {
        EXPECT_EQ(s.kind, serve::FailureKind::None);
        EXPECT_EQ(s.attempts, 1u);
        EXPECT_EQ(s.exitCodes, reference.exitCodes);
        EXPECT_EQ(s.outputs, reference.outputs);
        EXPECT_GT(s.dirtyPages, 0u) << "guest stores must dirty the fork";
        EXPECT_GT(s.sharedHits, 0u);
    }
}

TEST(Serve, FleetIsBitIdenticalToSerialReference)
{
    const gx86::GuestImage image = serveGuest();
    const serve::SharedArtifact artifact(image);

    // >= 32 sessions with fault injection armed: transient faults are
    // contained, rolled back and retried; everything still has to be a
    // pure function of (artifact, seed, id).
    serve::ServeConfig parallel = fleetConfig(32, 4);
    parallel.session.faults.seed = 123;
    parallel.session.faults.siteRates[faultsites::ServeSession] = 0.02;
    parallel.session.retry.maxAttempts = 4;
    serve::ServeConfig serial = parallel;
    serial.jobs = 1;

    const serve::ServeReport a = serve::runSessions(artifact, parallel);
    const serve::ServeReport b = serve::runSessions(artifact, serial);
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (std::size_t s = 0; s < a.sessions.size(); ++s)
        EXPECT_TRUE(sameSession(a.sessions[s], b.sessions[s]))
            << "session " << s << " diverged between jobs=4 and jobs=1";
    auto a_stats = a.stats.all();
    auto b_stats = b.stats.all();
    a_stats.erase("serve.jobs"); // The one gauge that names the config.
    b_stats.erase("serve.jobs");
    EXPECT_EQ(a_stats, b_stats);

    // Non-faulted sessions still match the plain engine byte for byte.
    const dbt::RunResult reference = plainReference(image);
    std::uint64_t classified = 0;
    for (const serve::SessionResult &s : a.sessions) {
        EXPECT_TRUE(s.kind == serve::FailureKind::None ||
                    s.kind == serve::FailureKind::InjectedFault)
            << "unexpected kind " << serve::failureKindName(s.kind);
        if (s.kind == serve::FailureKind::None) {
            EXPECT_EQ(s.exitCodes, reference.exitCodes);
            EXPECT_EQ(s.outputs, reference.outputs);
        }
        classified += a.stats.get(serve::failureKindStat(s.kind)) > 0;
    }
    // Every session lands in exactly one taxonomy bucket.
    std::uint64_t bucketed = 0;
    for (const serve::FailureKind kind : serve::AllFailureKinds)
        bucketed += a.stats.get(serve::failureKindStat(kind));
    EXPECT_EQ(bucketed, 32u);
}

TEST(Serve, FleetSharedSegmentFusionDifferential)
{
    // 32 InterpreterOnly sessions dispatch every block through the one
    // shared pre-decoded segment (fused handlers included) concurrently
    // -- the surface the TSan job exercises -- and must be bit-identical
    // to a fleet running the legacy per-instruction decode path.
    const gx86::GuestImage image = serveGuest();

    serve::ArtifactConfig fused;
    fused.interpreterOnly = true;
    const serve::SharedArtifact fused_artifact(image, fused);
    ASSERT_NE(fused_artifact.segment(), nullptr);
    EXPECT_GT(fused_artifact.segment()->fusedEntries(), 0u);

    serve::ArtifactConfig legacy;
    legacy.interpreterOnly = true;
    legacy.config.decodeCache = false;
    const serve::SharedArtifact legacy_artifact(image, legacy);
    ASSERT_EQ(legacy_artifact.segment(), nullptr);

    const serve::ServeConfig config = fleetConfig(32, 4);
    const serve::ServeReport a = serve::runSessions(fused_artifact, config);
    const serve::ServeReport b =
        serve::runSessions(legacy_artifact, config);
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (std::size_t s = 0; s < a.sessions.size(); ++s)
        EXPECT_TRUE(sameSession(a.sessions[s], b.sessions[s]))
            << "session " << s
            << " diverged between fused shared-segment and legacy decode";
}

TEST(Serve, RetriesRecoverFromTransientFaults)
{
    const gx86::GuestImage image = serveGuest();
    const serve::SharedArtifact artifact(image);
    serve::ServeConfig config = fleetConfig(32, 2);
    config.session.faults.seed = 9;
    config.session.faults.siteRates[faultsites::ServeSession] = 0.05;
    config.session.retry.maxAttempts = 6;
    const serve::ServeReport report = serve::runSessions(artifact, config);
    EXPECT_GT(report.stats.get("serve.retries"), 0u);
    EXPECT_GT(report.stats.get("serve.recovered"), 0u);
    EXPECT_GT(report.stats.get("serve.backoff_cycles"), 0u);
    for (const serve::SessionResult &s : report.sessions)
        if (s.attempts > 1 && s.kind == serve::FailureKind::None) {
            EXPECT_GT(s.latency, s.makespan)
                << "retried session must pay its backoff in latency";
        }

    // With retries disabled the same faults become final failures.
    serve::ServeConfig no_retry = config;
    no_retry.session.retry.maxAttempts = 1;
    const serve::ServeReport hard = serve::runSessions(artifact, no_retry);
    EXPECT_GT(hard.failed, 0u);
    EXPECT_EQ(hard.stats.get("serve.retries"), 0u);
    for (const serve::SessionResult &s : hard.sessions)
        if (s.kind != serve::FailureKind::None) {
            EXPECT_EQ(s.kind, serve::FailureKind::InjectedFault);
        }
}

TEST(Serve, InstructionBudgetEvictsWithDiagnosis)
{
    const gx86::GuestImage image = serveGuest();
    const serve::SharedArtifact artifact(image);
    serve::ServeConfig config = fleetConfig(4, 2);
    config.session.insnBudget = 10; // Far below the guest's needs.
    const serve::ServeReport report = serve::runSessions(artifact, config);
    EXPECT_EQ(report.failed, 4u);
    EXPECT_FALSE(report.allSucceeded());
    for (const serve::SessionResult &s : report.sessions) {
        EXPECT_EQ(s.kind, serve::FailureKind::BudgetExhausted);
        EXPECT_FALSE(s.finished);
        EXPECT_EQ(s.attempts, 1u) << "evictions are not retried";
    }
    EXPECT_EQ(report.stats.get(serve::failureKindStat(
                  serve::FailureKind::BudgetExhausted)),
              4u);
}

// --- Degradation ladder ----------------------------------------------

TEST(Serve, DegradationLadderPreservesBehaviour)
{
    const gx86::GuestImage image = serveGuest();
    const dbt::RunResult reference = plainReference(image);

    // Warm: snapshot produced by a profiling engine, loaded from disk.
    const std::string path =
        ::testing::TempDir() + "test_serve_warm.rtbc";
    {
        dbt::Dbt profiler(image, dbt::DbtConfig::risotto());
        std::vector<dbt::ThreadSpec> threads(GuestThreads);
        for (std::size_t t = 0; t < GuestThreads; ++t)
            threads[t].regs[0] = t;
        ASSERT_TRUE(profiler.run(threads).finished);
        ASSERT_TRUE(profiler.savePersistentCache(path));
    }
    serve::ArtifactConfig warm_config;
    warm_config.snapshotPath = path;
    const serve::SharedArtifact warm(image, warm_config);
    EXPECT_EQ(warm.mode(), serve::ArtifactMode::Warm);
    EXPECT_GT(warm.stats().get("serve.artifact_snapshot_loaded"), 0u);

    serve::ArtifactConfig interp_config;
    interp_config.interpreterOnly = true;
    const serve::SharedArtifact interp(image, interp_config);
    EXPECT_EQ(interp.mode(), serve::ArtifactMode::InterpreterOnly);
    EXPECT_EQ(interp.cache().size(), 0u);

    // A snapshot nobody can parse degrades to cold, never to an error.
    const std::string bad_path =
        ::testing::TempDir() + "test_serve_bad.rtbc";
    {
        std::ofstream out(bad_path, std::ios::binary);
        out << "not a snapshot";
    }
    serve::ArtifactConfig damaged_config;
    damaged_config.snapshotPath = bad_path;
    const serve::SharedArtifact damaged(image, damaged_config);
    EXPECT_EQ(damaged.mode(), serve::ArtifactMode::Cold);

    const serve::ServeConfig config = fleetConfig(6, 2);
    for (const serve::SharedArtifact *artifact :
         {&warm, &interp, &damaged}) {
        const serve::ServeReport report =
            serve::runSessions(*artifact, config);
        EXPECT_EQ(report.succeeded, 6u);
        for (const serve::SessionResult &s : report.sessions) {
            EXPECT_EQ(s.exitCodes, reference.exitCodes);
            EXPECT_EQ(s.outputs, reference.outputs);
        }
    }
}

// --- Persist truncation accounting ----------------------------------

TEST(Persist, TruncationIsCountedSeparatelyFromBadBounds)
{
    const gx86::GuestImage image = serveGuest();
    dbt::Dbt profiler(image, dbt::DbtConfig::risotto());
    std::vector<dbt::ThreadSpec> threads(GuestThreads);
    for (std::size_t t = 0; t < GuestThreads; ++t)
        threads[t].regs[0] = t;
    ASSERT_TRUE(profiler.run(threads).finished);
    const std::vector<std::uint8_t> bytes =
        persist::serialize(profiler.exportSnapshot());

    persist::ParseReport intact;
    persist::parse(bytes, intact);
    ASSERT_GT(intact.recordsLoaded, 0u);
    EXPECT_EQ(intact.recordsTruncated, 0u);

    // Cut the file mid-record: the tail is truncation, not bad bounds.
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + bytes.size() * 3 / 4);
    persist::ParseReport report;
    persist::parse(cut, report);
    EXPECT_GT(report.recordsTruncated, 0u);
    EXPECT_LT(report.recordsLoaded, intact.recordsLoaded);
}

} // namespace
