/**
 * @file
 * Tests for the gx86 guest ISA: codec round-trips, assembler fixups,
 * image layout, and the reference interpreter's semantics.
 */

#include <gtest/gtest.h>

#include "gx86/assembler.hh"
#include "gx86/codec.hh"
#include "gx86/interp.hh"
#include "support/error.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;
using namespace risotto::gx86;

TEST(Codec, RoundTripEveryLayout)
{
    std::vector<Instruction> cases;
    {
        Instruction i;
        i.op = Opcode::Nop;
        cases.push_back(i);
        i.op = Opcode::MFence;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::MovRI;
        i.rd = 7;
        i.imm = -123456789012345;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::Add;
        i.rd = 3;
        i.rs = 12;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::Load;
        i.rd = 5;
        i.rb = 2;
        i.off = -64;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::Store;
        i.rs = 9;
        i.rb = 15;
        i.off = 1024;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::StoreI;
        i.rb = 4;
        i.off = 8;
        i.imm = -7;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::Jcc;
        i.cond = Cond::Le;
        i.off = -33;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::PltCall;
        i.sym = 513;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Opcode::LockCmpxchg;
        i.rs = 6;
        i.rb = 1;
        i.off = 16;
        cases.push_back(i);
    }

    for (const Instruction &original : cases) {
        std::vector<std::uint8_t> bytes;
        const std::size_t len = encode(original, bytes);
        const Instruction decoded = decode(bytes, 0);
        EXPECT_EQ(decoded.op, original.op) << original.toString();
        EXPECT_EQ(decoded.length, len);
        EXPECT_EQ(decoded.toString(), original.toString());
    }
}

TEST(Codec, RejectsTruncatedAndUnknown)
{
    std::vector<std::uint8_t> bytes = {
        static_cast<std::uint8_t>(Opcode::MovRI), 0x01};
    EXPECT_THROW(decode(bytes, 0), GuestFault);
    bytes = {0xff};
    EXPECT_THROW(decode(bytes, 0), GuestFault);
}

/** Property: random instruction streams decode back to themselves. */
TEST(Codec, RandomStreamRoundTrip)
{
    Rng rng(7);
    const Opcode pool[] = {
        Opcode::Nop, Opcode::MovRI, Opcode::MovRR, Opcode::Load,
        Opcode::Store, Opcode::StoreI, Opcode::Add, Opcode::SubI,
        Opcode::ShlI, Opcode::CmpRR, Opcode::CmpRI, Opcode::Jmp,
        Opcode::Jcc, Opcode::Call, Opcode::Ret, Opcode::LockCmpxchg,
        Opcode::LockXadd, Opcode::MFence, Opcode::FAdd, Opcode::Syscall,
        Opcode::PltCall, Opcode::Load8, Opcode::Store8,
    };
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<Instruction> stream;
        std::vector<std::uint8_t> bytes;
        for (int n = 0; n < 60; ++n) {
            Instruction i;
            i.op = pool[rng.below(std::size(pool))];
            i.rd = static_cast<Reg>(rng.below(16));
            i.rs = static_cast<Reg>(rng.below(16));
            i.rb = static_cast<Reg>(rng.below(16));
            i.cond = static_cast<Cond>(rng.below(6));
            i.off = static_cast<std::int32_t>(rng.next());
            // Immediates are 64-bit only for MovRI; other layouts carry
            // sign-extended 32-bit fields.
            i.imm = i.op == Opcode::MovRI
                        ? static_cast<std::int64_t>(rng.next())
                        : static_cast<std::int32_t>(rng.next());
            i.sym = static_cast<std::uint16_t>(rng.below(1000));
            stream.push_back(i);
            encode(i, bytes);
        }
        std::size_t offset = 0;
        for (const Instruction &expect : stream) {
            const Instruction got = decode(bytes, offset);
            EXPECT_EQ(got.toString(), expect.toString());
            offset += got.length;
        }
        EXPECT_EQ(offset, bytes.size());
    }
}

TEST(Assembler, LoopSumProgram)
{
    // Sum 1..10 into R1, store to data, exit with the sum.
    Assembler a;
    const Addr slot = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(1, 0);  // acc
    a.movri(2, 10); // counter
    const auto loop = a.newLabel();
    a.bind(loop);
    a.add(1, 2);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Ne, loop);
    a.movri(3, static_cast<std::int64_t>(slot));
    a.store(3, 0, 1);
    a.movri(0, 0); // exit syscall
    a.syscall();
    const GuestImage image = a.finish("main");

    Interpreter interp(image);
    interp.setReg(1, 0);
    // Seed exit code register after loop: exit reads R1 (= 55).
    const InterpResult result = interp.run();
    EXPECT_EQ(result.exitCode, 55);
    EXPECT_EQ(interp.memory().load64(slot), 55u);
}

TEST(Assembler, ForwardBranchSkipsCode)
{
    Assembler a;
    a.defineSymbol("main");
    const auto over = a.newLabel();
    a.movri(1, 1);
    a.jmp(over);
    a.movri(1, 99); // Skipped.
    a.bind(over);
    a.movri(0, 0);
    a.syscall();
    const GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_EQ(interp.run().exitCode, 1);
}

TEST(Assembler, CallAndRet)
{
    Assembler a;
    // Function first so callSymbol can resolve it.
    const auto skip = a.newLabel();
    a.defineSymbol("main");
    a.jmp(skip);
    a.defineSymbol("double_it");
    a.add(1, 1);
    a.ret();
    a.bind(skip);
    a.movri(1, 21);
    a.callSymbol("double_it");
    a.movri(0, 0);
    a.syscall();
    const GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_EQ(interp.run().exitCode, 42);
}

TEST(Interp, CmpxchgSemantics)
{
    Assembler a;
    const Addr slot = a.dataQuad(5);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(slot));
    // Failing CAS: expect 3, slot holds 5 -> R0 gets old value 5, no store.
    a.movri(0, 3);
    a.movri(2, 111);
    a.lockCmpxchg(4, 0, 2);
    a.movrr(5, 0); // R5 = old value (5).
    // Succeeding CAS: R0 already 5 -> store 7.
    a.movri(6, 7);
    a.lockCmpxchg(4, 0, 6);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    interp.run();
    EXPECT_EQ(interp.reg(5), 5u);
    EXPECT_EQ(interp.memory().load64(slot), 7u);
}

TEST(Interp, XaddSemantics)
{
    Assembler a;
    const Addr slot = a.dataQuad(10);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(slot));
    a.movri(2, 32);
    a.lockXadd(4, 0, 2);
    a.movrr(1, 2); // old value (10) -> exit code
    a.movri(0, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_EQ(interp.run().exitCode, 10);
    EXPECT_EQ(interp.memory().load64(slot), 42u);
}

TEST(Interp, FloatingPointOps)
{
    Assembler a;
    a.defineSymbol("main");
    a.movfd(1, 1.5);
    a.movfd(2, 2.25);
    a.fadd(1, 2);   // 3.75
    a.fmul(1, 1);   // 14.0625
    a.fsqrt(1, 1);  // 3.75
    a.movfd(3, 0.75);
    a.fsub(1, 3);   // 3.0
    a.fdiv(1, 3);   // 4.0
    a.cvtfi(1, 1);  // 4
    a.movri(0, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_EQ(interp.run().exitCode, 4);
}

TEST(Interp, PltCallUsesGuestImplementation)
{
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("triple");
    a.bindGuestImplHere("triple");
    // Guest implementation: R1 *= 3.
    a.muli(1, 3);
    a.ret();
    a.bind(start);
    a.movri(1, 14);
    a.callImport("triple");
    a.movri(0, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_EQ(interp.run().exitCode, 42);
}

TEST(Interp, PltCallUsesNativeHook)
{
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("magic");
    a.bind(start);
    a.movri(1, 2);
    a.callImport("magic");
    a.movri(0, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    interp.setNativeHook([](const std::string &name, auto &regs,
                            Memory &) {
        EXPECT_EQ(name, "magic");
        regs[1] *= 50;
        return true;
    });
    EXPECT_EQ(interp.run().exitCode, 100);
}

TEST(Interp, UnresolvedImportFaults)
{
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    a.importFunction("missing");
    a.bind(start);
    a.callImport("missing");
    a.hlt();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_THROW(interp.run(), GuestFault);
}

TEST(Interp, SyscallOutput)
{
    Assembler a;
    a.defineSymbol("main");
    for (char c : std::string("hi")) {
        a.movri(0, 1);
        a.movri(1, c);
        a.syscall();
    }
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    GuestImage image = a.finish("main");
    Interpreter interp(image);
    EXPECT_EQ(interp.run().output, "hi");
}

TEST(Image, DisassemblyAndSymbolLookup)
{
    Assembler a;
    a.defineSymbol("main");
    a.movri(1, 7);
    a.hlt();
    GuestImage image = a.finish("main");
    EXPECT_TRUE(image.symbolAddr("main").has_value());
    EXPECT_FALSE(image.symbolAddr("nope").has_value());
    const std::string dis = image.disassemble();
    EXPECT_NE(dis.find("main:"), std::string::npos);
    EXPECT_NE(dis.find("mov r1, 7"), std::string::npos);
    EXPECT_NE(dis.find("hlt"), std::string::npos);
}

} // namespace
