/**
 * @file
 * Tests for the litmus text format and the end-to-end stress runner,
 * including the library's central soundness property: outcomes observed
 * operationally (translated code on the weak-memory machine) are a
 * subset of the outcomes allowed axiomatically.
 */

#include <gtest/gtest.h>

#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "litmus/parser.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "risotto/stress.hh"
#include "support/error.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;

const models::X86Model kX86;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);

TEST(LitmusParser, ParsesMp)
{
    const LitmusTest test = parseLitmus(
        "test MP\n"
        "thread\n"
        "  store 0 1\n"
        "  store 1 1\n"
        "thread\n"
        "  load r0 1\n"
        "  load r1 0\n"
        "forbidden 1:r0=1 & 1:r1=0\n");
    EXPECT_EQ(test.program.name, "MP");
    ASSERT_EQ(test.program.threads.size(), 2u);
    EXPECT_TRUE(test.forbiddenInSource);

    // Same behaviours as the built-in MP.
    const BehaviorSet parsed = enumerateBehaviors(test.program, kX86);
    const BehaviorSet builtin = enumerateBehaviors(mp().program, kX86);
    EXPECT_EQ(parsed, builtin);
}

TEST(LitmusParser, ParsesRmwFencesGuardsAndFlavors)
{
    const LitmusTest test = parseLitmus(
        "test fancy\n"
        "init [2]=0\n"
        "thread\n"
        "  store 0 1 rel\n"
        "  fence mfence\n"
        "  rmw r0 2 0 1 lxsx al\n"
        "thread\n"
        "  load r0 0 acq\n"
        "  if r0=1 store 1 r0\n"
        "exists 0:r0=0 & [1]=1\n");
    const auto &t0 = test.program.threads[0].instrs;
    EXPECT_EQ(t0[0].writeAccess, memcore::Access::Release);
    EXPECT_EQ(t0[1].fence, memcore::FenceKind::MFence);
    EXPECT_EQ(t0[2].rmwKind, memcore::RmwKind::LxSx);
    EXPECT_EQ(t0[2].readAccess, memcore::Access::Acquire);
    EXPECT_EQ(t0[2].writeAccess, memcore::Access::Release);
    const auto &t1 = test.program.threads[1].instrs;
    EXPECT_EQ(t1[0].readAccess, memcore::Access::Acquire);
    EXPECT_EQ(t1[1].guardReg, 0);
    EXPECT_EQ(t1[1].value.kind, StoreExpr::Kind::FromReg);
    EXPECT_FALSE(test.forbiddenInSource);
}

TEST(LitmusParser, RejectsBadInput)
{
    EXPECT_THROW(parseLitmus("store 0 1\n"), FatalError); // No thread.
    EXPECT_THROW(parseLitmus("test x\nthread\n  frobnicate r0\n"
                             "exists 0:r0=0\n"),
                 FatalError);
    EXPECT_THROW(parseLitmus("test x\nthread\n  load r0\n"
                             "exists 0:r0=0\n"),
                 FatalError);
    EXPECT_THROW(parseLitmus("test x\nthread\n  load r0 0\n"),
                 FatalError); // No exists clause.
}

TEST(LitmusParser, CorpusRoundTrips)
{
    // format -> parse preserves semantics for the whole corpus.
    for (const LitmusTest &test : x86Corpus()) {
        const std::string text = formatLitmus(test);
        const LitmusTest reparsed = parseLitmus(text);
        EXPECT_EQ(reparsed.program.name, test.program.name);
        EXPECT_EQ(enumerateBehaviors(reparsed.program, kX86),
                  enumerateBehaviors(test.program, kX86))
            << text;
        EXPECT_EQ(reparsed.forbiddenInSource, test.forbiddenInSource);
    }
}

TEST(Stress, WeakMpObservedOnlyWithoutFences)
{
    const LitmusTest test = mp();
    const auto weak = runStress(test.program,
                                dbt::DbtConfig::qemuNoFences(), 400);
    EXPECT_GT(weak.runs(), 0u);
    EXPECT_TRUE(weak.observed(test.interesting))
        << weak.toString();

    const auto strong =
        runStress(test.program, dbt::DbtConfig::risotto(), 200);
    EXPECT_FALSE(strong.observed(test.interesting)) << strong.toString();
}

TEST(Stress, SbWeakOutcomeAllowedAndObservable)
{
    // SB's a=b=0 is allowed even in x86; a correct DBT may show it.
    const LitmusTest test = sb();
    const auto result =
        runStress(test.program, dbt::DbtConfig::risotto(), 400);
    // It must at least be axiomatically allowed; observing it requires
    // the store buffers to delay, which the randomized machine does.
    const BehaviorSet x86_behaviors =
        enumerateBehaviors(test.program, kX86);
    EXPECT_TRUE(test.interesting.existsIn(x86_behaviors));
    EXPECT_TRUE(result.observed(test.interesting)) << result.toString();
}

TEST(Stress, CmpxchgOutcomesMatchSemantics)
{
    // Two threads CAS the same cell: exactly one wins.
    Program p;
    p.name = "cas-race";
    Thread t0, t1;
    t0.instrs = {Instr::rmw(0, 0, 0, 1)};
    t1.instrs = {Instr::rmw(0, 0, 0, 2)};
    p.threads = {t0, t1};
    const auto result = runStress(p, dbt::DbtConfig::risotto(), 200);
    Condition both_win;
    both_win.reg(0, 0, 0).reg(1, 0, 0);
    EXPECT_FALSE(result.observed(both_win)) << result.toString();
    // Each thread wins in some schedule.
    Condition t0_wins;
    t0_wins.mem(0, 1);
    Condition t1_wins;
    t1_wins.mem(0, 2);
    EXPECT_TRUE(result.observed(t0_wins));
    EXPECT_TRUE(result.observed(t1_wins));
}

/**
 * The soundness property: operational outcomes form a subset of the
 * axiomatic behaviours of the mapped program, and -- for the verified
 * mappings -- of the x86 behaviours of the source.
 */
TEST(StressSoundness, OperationalSubsetOfAxiomatic)
{
    struct Case
    {
        dbt::DbtConfig config;
        mapping::X86ToTcgScheme frontend;
        mapping::TcgToArmScheme backend;
        mapping::RmwLowering rmw;
        bool refines_x86;
    };
    const Case cases[] = {
        {dbt::DbtConfig::risotto(), mapping::X86ToTcgScheme::Risotto,
         mapping::TcgToArmScheme::Risotto,
         mapping::RmwLowering::InlineCasal, true},
        {dbt::DbtConfig::qemuNoFences(),
         mapping::X86ToTcgScheme::NoFences, mapping::TcgToArmScheme::Qemu,
         mapping::RmwLowering::HelperRmw1AL, false},
    };

    for (const LitmusTest &test : {mp(), sb(), lb(), sbal()}) {
        // Axiomatic reference sets.
        BehaviorSet x86_behaviors;
        for (const Outcome &o :
             enumerateBehaviors(test.program, kX86))
            x86_behaviors.insert(normalizeOutcome(test.program, o));

        for (const Case &c : cases) {
            const Program arm = mapping::mapX86ToArm(
                test.program, c.frontend, c.backend, c.rmw);
            BehaviorSet arm_behaviors;
            for (const Outcome &o : enumerateBehaviors(arm, kArm))
                arm_behaviors.insert(normalizeOutcome(test.program, o));

            const auto stress =
                runStress(test.program, c.config, 250);
            for (const auto &[outcome, count] : stress.histogram) {
                const Outcome norm =
                    normalizeOutcome(test.program, outcome);
                EXPECT_TRUE(arm_behaviors.count(norm))
                    << test.program.name << " / " << c.config.name
                    << ": observed outcome outside the Arm model: "
                    << norm.toString();
                if (c.refines_x86) {
                    EXPECT_TRUE(x86_behaviors.count(norm))
                        << test.program.name << " / " << c.config.name
                        << ": verified mapping leaked non-x86 outcome: "
                        << norm.toString();
                }
            }
        }
    }
}

} // namespace
