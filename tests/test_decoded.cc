/**
 * @file
 * The pre-decoded execution pipeline: DecodedSegment vs per-instruction
 * decode, fusion guard side conditions (in the style of the optimizer
 * guard tests: each guard pinned by a direct case so a refactor cannot
 * silently widen it), the fused-handler obligation-graph check, and the
 * corpus-wide differential -- decoder cache + fusion must be invisible
 * to every guest-visible result and to the verify. / opt. counters.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "gx86/interp.hh"
#include "support/error.hh"
#include "verify/fusion.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;
using gx86::DecodedSegment;
using gx86::FusionConfig;
using gx86::FusionKind;
using gx86::GuestImage;
using gx86::Instruction;
using gx86::Opcode;
using workloads::WorkloadSpec;

Instruction
ins(Opcode op)
{
    Instruction in;
    in.op = op;
    return in;
}

/** A program whose hot loop contains every fusible shape. */
GuestImage
fusibleLoop(std::int64_t iters)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, iters);
    a.movri(5, static_cast<std::int64_t>(buf));
    const auto loop = a.newLabel();
    a.bind(loop);
    a.movri(3, 42); // mov-imm + alu
    a.add(1, 3);
    a.addi(4, 1); // inc/dec chain
    a.subi(4, 2);
    a.store(5, 8, 1); // store + load
    a.load(6, 5, 8);
    a.xor_(1, 6);
    a.subi(2, 1);
    a.cmpri(2, 0); // cmp + jcc
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

// --- Segment vs legacy decode ----------------------------------------------

TEST(DecodedSegment, EveryEntryMatchesLegacyDecodeAt)
{
    for (const WorkloadSpec &base : workloads::fullSuite()) {
        WorkloadSpec spec = base;
        spec.iterations = 5;
        const GuestImage image = workloads::buildGuestWorkload(spec);
        FusionConfig fusion;
        fusion.enabled = false;
        const auto segment = DecodedSegment::build(image, fusion);
        ASSERT_EQ(segment->size(), image.text.size()) << spec.name;
        for (std::size_t off = 0; off < segment->size(); ++off) {
            const gx86::Addr pc = image.textBase + off;
            const gx86::DecodedEntry *e = segment->entry(pc);
            ASSERT_NE(e, nullptr);
            if (!e->valid()) {
                EXPECT_THROW(image.decodeAt(pc), GuestFault)
                    << spec.name << " off " << off;
                continue;
            }
            const Instruction legacy = image.decodeAt(pc);
            EXPECT_EQ(e->first.toString(), legacy.toString())
                << spec.name << " off " << off;
            EXPECT_EQ(e->totalLength, legacy.length);
        }
    }
}

TEST(DecodedSegment, OutOfTextPcsHaveNoEntry)
{
    const GuestImage image = fusibleLoop(4);
    const auto segment = DecodedSegment::build(image, FusionConfig{});
    EXPECT_EQ(segment->entry(image.textBase - 1), nullptr);
    EXPECT_EQ(segment->entry(image.textBase + segment->size()), nullptr);
    EXPECT_NE(segment->entry(image.textBase), nullptr);
}

TEST(DecodedSegment, DecodeAtReportsTruncationWithBounds)
{
    const GuestImage image = fusibleLoop(4);
    try {
        image.decodeAt(image.textEnd() + 8);
        FAIL() << "expected GuestFault";
    } catch (const GuestFault &fault) {
        EXPECT_NE(std::string(fault.what()).find("outside text"),
                  std::string::npos);
    }
}

// --- Fusion guard side conditions ------------------------------------------

TEST(FusionGuards, LockPrefixedRmwNeverFuses)
{
    EXPECT_FALSE(gx86::opFusible(Opcode::LockCmpxchg));
    EXPECT_FALSE(gx86::opFusible(Opcode::LockXadd));
    EXPECT_EQ(gx86::matchFusion(ins(Opcode::LockXadd), ins(Opcode::Jcc)),
              FusionKind::Count_);
    EXPECT_EQ(gx86::matchFusion(ins(Opcode::CmpRR),
                                ins(Opcode::LockCmpxchg)),
              FusionKind::Count_);
}

TEST(FusionGuards, MFenceNeverFuses)
{
    EXPECT_FALSE(gx86::opFusible(Opcode::MFence));
    EXPECT_EQ(gx86::matchFusion(ins(Opcode::MFence), ins(Opcode::Load)),
              FusionKind::Count_);
    EXPECT_EQ(gx86::matchFusion(ins(Opcode::Store), ins(Opcode::MFence)),
              FusionKind::Count_);
}

TEST(FusionGuards, BlockTerminatorsNeverStartAPair)
{
    for (Opcode op : {Opcode::Jmp, Opcode::Jcc, Opcode::Call, Opcode::Ret,
                      Opcode::Hlt, Opcode::Syscall}) {
        EXPECT_EQ(gx86::matchFusion(ins(op), ins(Opcode::Load)),
                  FusionKind::Count_)
            << static_cast<int>(op);
    }
}

TEST(FusionGuards, CanonicalPairsMatch)
{
    for (const auto &pattern : gx86::fusionPatterns())
        EXPECT_EQ(gx86::matchFusion(pattern.first, pattern.second),
                  pattern.kind)
            << pattern.name;
}

TEST(FusionGuards, IncDecRequiresSameRegister)
{
    Instruction a = ins(Opcode::AddI);
    a.rd = 1;
    Instruction b = ins(Opcode::SubI);
    b.rd = 2;
    EXPECT_EQ(gx86::matchFusion(a, b), FusionKind::Count_);
    b.rd = 1;
    EXPECT_EQ(gx86::matchFusion(a, b), FusionKind::IncDec);
}

TEST(FusionGuards, SegmentNeverFusesAcrossABlockBoundary)
{
    // In the built segment no fused entry may have a block terminator
    // as its *first* member, and the second member of every fused pair
    // keeps its own unfused entry (a branch into the middle of a pair
    // must behave exactly as unfused execution).
    const GuestImage image = fusibleLoop(4);
    FusionConfig fusion;
    const auto segment = DecodedSegment::build(image, fusion);
    ASSERT_GT(segment->fusedEntries(), 0u);
    for (std::size_t off = 0; off < segment->size(); ++off) {
        const gx86::DecodedEntry *e =
            segment->entry(image.textBase + off);
        if (!e->valid() || !e->fused())
            continue;
        EXPECT_FALSE(gx86::opEndsBlock(e->first.op));
        const gx86::DecodedEntry *second =
            segment->entry(image.textBase + off + e->first.length);
        ASSERT_NE(second, nullptr);
        ASSERT_TRUE(second->valid());
        EXPECT_EQ(second->first.toString(), e->second.toString());
    }
}

// --- Fused-handler obligation-graph check ----------------------------------

TEST(FusionValidation, EveryPatternPassesTheValidator)
{
    const auto reports = verify::validateFusionPatterns();
    ASSERT_EQ(reports.size(), gx86::fusionPatterns().size());
    for (const auto &report : reports) {
        EXPECT_TRUE(report.guardsHold) << report.name;
        EXPECT_TRUE(report.violations.empty()) << report.name;
        EXPECT_TRUE(report.ok()) << report.name;
    }
    FusionConfig config;
    EXPECT_EQ(verify::applyFusionReports(reports, config), 0u);
    for (bool enabled : config.pattern)
        EXPECT_TRUE(enabled);
}

TEST(FusionValidation, BrokenReportDisablesOnlyItsPattern)
{
    auto reports = verify::validateFusionPatterns();
    reports[0].guardsHold = false;
    FusionConfig config;
    EXPECT_EQ(verify::applyFusionReports(reports, config), 1u);
    EXPECT_FALSE(
        config.pattern[static_cast<std::size_t>(reports[0].kind)]);
    for (std::size_t k = 1; k < reports.size(); ++k)
        EXPECT_TRUE(
            config.pattern[static_cast<std::size_t>(reports[k].kind)]);
}

// --- Standalone interpreter differential -----------------------------------

TEST(DispatchDifferential, InterpreterModesAreBitIdentical)
{
    const GuestImage image = fusibleLoop(500);
    gx86::InterpOptions legacy;
    legacy.decodeCache = false;
    gx86::InterpOptions decoded;
    decoded.fusion.enabled = false;
    gx86::InterpOptions fused;

    gx86::Interpreter a(image, legacy);
    gx86::Interpreter b(image, decoded);
    gx86::Interpreter c(image, fused);
    ASSERT_EQ(a.segment(), nullptr);
    ASSERT_NE(c.segment(), nullptr);
    ASSERT_GT(c.segment()->fusedEntries(), 0u);

    const auto ra = a.run();
    const auto rb = b.run();
    const auto rc = c.run();
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.output, rc.output);
    EXPECT_EQ(ra.exitCode, rb.exitCode);
    EXPECT_EQ(ra.exitCode, rc.exitCode);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.instructions, rc.instructions);
}

TEST(DispatchDifferential, BudgetFaultPointMatchesUnfused)
{
    // A pair that would overshoot the instruction budget re-executes
    // unfused, so for every budget the fused interpreter either throws
    // exactly when the legacy one does or retires exactly as many
    // instructions.
    const GuestImage image = fusibleLoop(3);
    for (std::uint64_t budget = 1; budget <= 40; ++budget) {
        gx86::InterpOptions legacy;
        legacy.decodeCache = false;
        gx86::Interpreter a(image, legacy);
        gx86::Interpreter b(image, gx86::InterpOptions{});
        bool a_threw = false;
        bool b_threw = false;
        gx86::InterpResult ra;
        gx86::InterpResult rb;
        try {
            ra = a.run(budget);
        } catch (const GuestFault &) {
            a_threw = true;
        }
        try {
            rb = b.run(budget);
        } catch (const GuestFault &) {
            b_threw = true;
        }
        EXPECT_EQ(a_threw, b_threw) << "budget " << budget;
        if (!a_threw && !b_threw) {
            EXPECT_EQ(ra.instructions, rb.instructions)
                << "budget " << budget;
            EXPECT_EQ(ra.output, rb.output) << "budget " << budget;
        }
    }
}

// --- Corpus-wide engine differential ---------------------------------------

std::map<std::string, std::uint64_t>
prefixedStats(const StatSet &stats, const std::string &prefix)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, value] : stats.all())
        if (name.rfind(prefix, 0) == 0)
            out[name] = value;
    return out;
}

TEST(DispatchDifferential, CorpusIsBitIdenticalWithAndWithoutCache)
{
    for (const WorkloadSpec &base : workloads::fullSuite()) {
        WorkloadSpec spec = base;
        spec.iterations = 30;
        const GuestImage image = workloads::buildGuestWorkload(spec);

        DbtConfig on = DbtConfig::risotto();
        on.validateTranslations = true;
        DbtConfig nofusion = on;
        nofusion.fusion = false;
        DbtConfig off = on;
        off.decodeCache = false;

        Dbt engine_on(image, on);
        Dbt engine_nofusion(image, nofusion);
        Dbt engine_off(image, off);
        const auto r_on = engine_on.run({ThreadSpec{}});
        const auto r_nofusion = engine_nofusion.run({ThreadSpec{}});
        const auto r_off = engine_off.run({ThreadSpec{}});

        ASSERT_TRUE(r_on.finished) << spec.name;
        EXPECT_EQ(r_on.outputs, r_off.outputs) << spec.name;
        EXPECT_EQ(r_on.outputs, r_nofusion.outputs) << spec.name;
        EXPECT_EQ(r_on.exitCodes, r_off.exitCodes) << spec.name;
        EXPECT_EQ(r_on.exitCodes, r_nofusion.exitCodes) << spec.name;
        EXPECT_EQ(r_on.makespan, r_off.makespan) << spec.name;
        EXPECT_EQ(r_on.validationViolations, 0u) << spec.name;
        EXPECT_EQ(r_off.validationViolations, 0u) << spec.name;

        // The pipeline is an execution strategy, not a translation
        // change: verify. and opt. counters must match exactly.
        for (const std::string &prefix : {"verify.", "opt."}) {
            EXPECT_EQ(prefixedStats(r_on.stats, prefix),
                      prefixedStats(r_off.stats, prefix))
                << spec.name << " " << prefix;
            EXPECT_EQ(prefixedStats(r_on.stats, prefix),
                      prefixedStats(r_nofusion.stats, prefix))
                << spec.name << " " << prefix;
        }
    }
}

TEST(DispatchDifferential, EngineExposesSegmentAndEstimate)
{
    const GuestImage image = fusibleLoop(200);
    DbtConfig config = DbtConfig::risotto();
    Dbt engine(image, config);
    ASSERT_NE(engine.segment(), nullptr);
    EXPECT_GT(engine.segment()->validEntries(), 0u);
    const auto result = engine.run({ThreadSpec{}});
    ASSERT_TRUE(result.finished);
    EXPECT_GT(engine.guestInsnEstimate(), 0u);

    DbtConfig off = DbtConfig::risotto();
    off.decodeCache = false;
    Dbt legacy(image, off);
    EXPECT_EQ(legacy.segment(), nullptr);
    EXPECT_TRUE(legacy.fusionReports().empty());
}

} // namespace
