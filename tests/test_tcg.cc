/**
 * @file
 * Tests for the TCG IR and its optimizer passes: fence merging with the
 * Section 6.1 semantics, constant folding / false-dependency elimination,
 * the Figure 10 memory eliminations with their side conditions, and
 * dead-code elimination.
 */

#include <gtest/gtest.h>

#include "support/threadpool.hh"
#include "tcg/arena.hh"
#include "tcg/ir.hh"
#include "tcg/optimizer.hh"

namespace
{

using namespace risotto;
using namespace risotto::tcg;
using gx86::Cond;
using memcore::FenceKind;
namespace b = tcg::build;

std::size_t
countOp(const Block &block, Op op)
{
    std::size_t n = 0;
    for (const Instr &i : block.instrs)
        if (i.op == op)
            ++n;
    return n;
}

std::vector<FenceKind>
fences(const Block &block)
{
    std::vector<FenceKind> out;
    for (const Instr &i : block.instrs)
        if (i.op == Op::Mb)
            out.push_back(i.fence);
    return out;
}

TEST(FenceMerge, PaperSection61Example)
{
    // a = X; Frm; Fww; Y = 1  ~~>  a = X; F(merged); Y = 1.
    Block blk;
    const TempId base = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x1000),
        b::ld(0, base, 0),
        b::mb(FenceKind::Frm),
        b::mb(FenceKind::Fww),
        b::st(1, base, 8),
    };
    const std::size_t merged = passFenceMerge(blk);
    EXPECT_EQ(merged, 1u);
    const auto fs = fences(blk);
    ASSERT_EQ(fs.size(), 1u);
    // Frm u Fww = {rr, rw, ww} which is covered by Fmm (lowered to DMBFF,
    // exactly like the paper's Fsc choice).
    EXPECT_EQ(fs[0], FenceKind::Fmm);
}

TEST(FenceMerge, PlacedAtEarliestPosition)
{
    Block blk;
    blk.instrs = {
        b::mb(FenceKind::Frr),
        b::movi(18, 5), // Pure op between fences: still mergeable.
        b::mb(FenceKind::Frw),
    };
    passFenceMerge(blk);
    ASSERT_EQ(blk.instrs.size(), 2u);
    EXPECT_EQ(blk.instrs[0].op, Op::Mb);
    EXPECT_EQ(blk.instrs[0].fence, FenceKind::Frm);
    EXPECT_EQ(blk.instrs[1].op, Op::MovI);
}

TEST(FenceMerge, MemoryOpBlocksMerging)
{
    Block blk;
    const TempId base = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x1000),
        b::mb(FenceKind::Frr),
        b::ld(0, base, 0),
        b::mb(FenceKind::Fww),
    };
    EXPECT_EQ(passFenceMerge(blk), 0u);
    EXPECT_EQ(fences(blk).size(), 2u);
}

TEST(FenceMerge, FscAbsorbsEverything)
{
    Block blk;
    blk.instrs = {
        b::mb(FenceKind::Fsc),
        b::mb(FenceKind::Frr),
        b::mb(FenceKind::Fww),
    };
    EXPECT_EQ(passFenceMerge(blk), 2u);
    const auto fs = fences(blk);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0], FenceKind::Fsc);
}

TEST(ConstantFold, FoldsArithmeticChains)
{
    Block blk;
    const TempId t1 = blk.newTemp();
    const TempId t2 = blk.newTemp();
    const TempId t3 = blk.newTemp();
    blk.instrs = {
        b::movi(t1, 6),
        b::movi(t2, 7),
        b::binop(Op::Mul, t3, t1, t2),
        b::mov(0, t3),
    };
    EXPECT_GE(passConstantFold(blk), 2u);
    // g0 = 42 should be a direct constant now.
    bool found = false;
    for (const Instr &i : blk.instrs)
        if (i.op == Op::MovI && i.a == 0 && i.imm == 42)
            found = true;
    EXPECT_TRUE(found);
}

TEST(ConstantFold, FalseDependencyElimination)
{
    // x * 0 -> 0 even when x is unknown (Section 6.1).
    Block blk;
    const TempId zero = blk.newTemp();
    const TempId result = blk.newTemp();
    blk.instrs = {
        b::movi(zero, 0),
        b::binop(Op::Mul, result, 3, zero), // g3 unknown.
        b::mov(1, result),
    };
    EXPECT_GE(passConstantFold(blk), 1u);
    bool found = false;
    for (const Instr &i : blk.instrs)
        if (i.op == Op::MovI && i.a == result && i.imm == 0)
            found = true;
    EXPECT_TRUE(found);
}

TEST(ConstantFold, XorAndSubSelfAreZero)
{
    Block blk;
    const TempId t = blk.newTemp();
    blk.instrs = {
        b::binop(Op::Xor, t, 5, 5),
        b::binop(Op::Sub, 6, 7, 7),
        b::mov(0, t),
    };
    EXPECT_EQ(passConstantFold(blk), 3u);
}

TEST(ConstantFold, KnownBranchFolds)
{
    Block blk;
    const TempId t = blk.newTemp();
    const TempId z = blk.newTemp();
    const auto label = blk.newLabel();
    blk.instrs = {
        b::movi(t, 1),
        b::movi(z, 0),
        b::brcond(Cond::Eq, t, z, label), // 1 == 0: never taken.
        b::movi(0, 10),
        b::setLabel(label),
    };
    passConstantFold(blk);
    EXPECT_EQ(countOp(blk, Op::BrCond), 0u);
    EXPECT_EQ(countOp(blk, Op::Br), 0u); // Dropped, not rewritten.
}

TEST(ConstantFold, LabelsResetKnowledge)
{
    Block blk;
    const TempId t = blk.newTemp();
    const auto label = blk.newLabel();
    blk.instrs = {
        b::movi(t, 3),
        b::setLabel(label), // Join point: t may differ on other paths.
        b::addi(0, t, 1),
    };
    passConstantFold(blk);
    // The AddI must NOT fold: t is unknown after the label.
    EXPECT_EQ(countOp(blk, Op::AddI), 1u);
}

TEST(MemoryElim, RawBecomesMove)
{
    Block blk;
    const TempId base = blk.newTemp();
    const TempId v = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::movi(v, 9),
        b::st(v, base, 0),
        b::ld(0, base, 0),
    };
    EXPECT_EQ(passMemoryElim(blk), 1u);
    EXPECT_EQ(countOp(blk, Op::Ld), 0u);
    EXPECT_EQ(countOp(blk, Op::St), 1u);
}

TEST(MemoryElim, FencedRawRespectsSideCondition)
{
    // W . Fww . R eliminates (tau in {sc, ww}); W . Frm . R must not.
    for (const FenceKind fence : {FenceKind::Fww, FenceKind::Frm}) {
        Block blk;
        const TempId base = blk.newTemp();
        const TempId v = blk.newTemp();
        blk.instrs = {
            b::movi(base, 0x2000),
            b::movi(v, 9),
            b::st(v, base, 0),
            b::mb(fence),
            b::ld(0, base, 0),
        };
        const std::size_t eliminated = passMemoryElim(blk);
        if (fence == FenceKind::Fww)
            EXPECT_EQ(eliminated, 1u);
        else
            EXPECT_EQ(eliminated, 0u);
    }
}

TEST(MemoryElim, WawRemovesFirstStore)
{
    Block blk;
    const TempId base = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::movi(18, 1),
        b::st(18, base, 0),
        b::mb(FenceKind::Fww),
        b::st(0, base, 0),
    };
    EXPECT_EQ(passMemoryElim(blk), 1u);
    EXPECT_EQ(countOp(blk, Op::St), 1u);
    // The fence survives (F-WAW keeps the fence).
    EXPECT_EQ(fences(blk).size(), 1u);
}

TEST(MemoryElim, RarBecomesMove)
{
    Block blk;
    const TempId base = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::ld(0, base, 0),
        b::ld(1, base, 0),
    };
    EXPECT_EQ(passMemoryElim(blk), 1u);
    EXPECT_EQ(countOp(blk, Op::Ld), 1u);
    EXPECT_EQ(countOp(blk, Op::Mov), 1u);
}

TEST(MemoryElim, VocabularyPreconditionBlocksPass)
{
    // A block containing Fmr (QEMU's scheme) must not be rewritten --
    // the FMR counterexample (Section 3.2).
    Block blk;
    const TempId base = blk.newTemp();
    const TempId v = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::mb(FenceKind::Fmr),
        b::movi(v, 9),
        b::st(v, base, 0),
        b::ld(0, base, 0),
    };
    EXPECT_EQ(passMemoryElim(blk), 0u);
}

TEST(MemoryElim, InterveningMemoryOpBlocks)
{
    Block blk;
    const TempId base = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::movi(18, 1),
        b::st(18, base, 0),
        b::ld(2, base, 8), // Different address in between.
        b::ld(0, base, 0),
    };
    EXPECT_EQ(passMemoryElim(blk), 0u);
}

TEST(MemoryElim, BaseClobberBlocks)
{
    Block blk;
    const TempId base = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::st(0, base, 0),
        b::addi(base, base, 0), // Redefines the base temp.
        b::ld(1, base, 0),
    };
    EXPECT_EQ(passMemoryElim(blk), 0u);
}

TEST(DeadCode, RemovesUnusedPureOps)
{
    Block blk;
    const TempId t1 = blk.newTemp();
    const TempId t2 = blk.newTemp();
    blk.instrs = {
        b::movi(t1, 1),
        b::movi(t2, 2), // Dead.
        b::mov(0, t1),
    };
    EXPECT_EQ(passDeadCode(blk), 1u);
    EXPECT_EQ(blk.instrs.size(), 2u);
}

TEST(DeadCode, GlobalsAreLive)
{
    Block blk;
    blk.instrs = {
        b::movi(3, 7), // Guest register: observable after the block.
    };
    EXPECT_EQ(passDeadCode(blk), 0u);
}

TEST(DeadCode, LoadsAreNeverRemoved)
{
    Block blk;
    const TempId base = blk.newTemp();
    const TempId dead = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::ld(dead, base, 0), // Result unused, but loads stay.
    };
    EXPECT_EQ(passDeadCode(blk), 0u);
}

TEST(DeadCode, LivenessFlowsThroughLabels)
{
    Block blk;
    const TempId t = blk.newTemp();
    const TempId z = blk.newTemp();
    const auto loop = blk.newLabel();
    blk.instrs = {
        b::movi(t, 5),
        b::setLabel(loop),
        b::addi(t, t, -1), // t used across the back edge.
        b::movi(z, 0),
        b::brcond(Cond::Ne, t, z, loop),
        b::mov(0, t),
    };
    // Nothing is dead here; especially t's updates must survive.
    EXPECT_EQ(passDeadCode(blk), 0u);
}

TEST(Pipeline, FullOptimizeCollectsStats)
{
    Block blk;
    const TempId base = blk.newTemp();
    const TempId t = blk.newTemp();
    const TempId dead = blk.newTemp();
    blk.instrs = {
        b::movi(base, 0x2000),
        b::ld(0, base, 0),
        b::mb(FenceKind::Frm),
        b::mb(FenceKind::Fww),
        b::st(1, base, 8),
        b::movi(t, 21),
        b::binop(Op::Add, t, t, t),
        b::movi(dead, 3),
        b::mov(2, t),
    };
    StatSet stats;
    OptimizerConfig config;
    optimize(blk, config, &stats);
    EXPECT_GE(stats.get("opt.fences_merged"), 1u);
    EXPECT_GE(stats.get("opt.constants_folded"), 1u);
    EXPECT_GE(stats.get("opt.dead_ops_removed"), 1u);
    EXPECT_EQ(fences(blk).size(), 1u);
}

TEST(IrPrinter, RendersReadably)
{
    Block blk;
    blk.guestPc = 0x1234;
    blk.instrs = {
        b::ld(18, 3, 8),
        b::mb(FenceKind::Frm),
        b::cas(19, 4, 0, 18, 5),
        b::gotoTb(0x1300),
    };
    const std::string s = blk.toString();
    EXPECT_NE(s.find("t18 = ld [g3+8]"), std::string::npos);
    EXPECT_NE(s.find("mb Frm"), std::string::npos);
    EXPECT_NE(s.find("cas"), std::string::npos);
    EXPECT_NE(s.find("goto_tb 0x1300"), std::string::npos);
}

} // namespace

namespace
{

TEST(DeadCode, HelpersKeepGuestStateLive)
{
    // Regression: the CAS helper reads its expected value from guest r0
    // (CPUState), invisibly to the IR. DCE must not remove the movi that
    // sets it up, and constant folding must not propagate stale guest
    // constants past a helper (helpers may also write guest registers).
    Block blk;
    blk.instrs = {
        b::movi(0, 0), // g0 = expected; only the helper reads it.
        b::callHelper(HelperId::CasHelper, blk.newTemp(), 3, 4),
    };
    EXPECT_EQ(passDeadCode(blk), 0u);
    ASSERT_EQ(blk.instrs.size(), 2u);
    EXPECT_EQ(blk.instrs[0].op, Op::MovI);

    Block fold;
    const TempId t = fold.newTemp();
    fold.instrs = {
        b::movi(0, 7),
        b::callHelper(HelperId::Syscall, tcg::NoTemp, 0, 1),
        b::mov(t, 0), // g0 may have been rewritten by the helper.
        b::mov(1, t),
    };
    passConstantFold(fold);
    // The mov from g0 must NOT have been folded to the constant 7.
    for (const Instr &i : fold.instrs)
        if (i.op == Op::MovI && i.a == t)
            FAIL() << "constant propagated across a helper call";
}

// --- BlockArena -------------------------------------------------------------

TEST(BlockArena, RecycleReusesGrownCapacity)
{
    BlockArena arena;
    Block block = arena.acquire(0x100);
    EXPECT_EQ(arena.mints(), 1u);
    EXPECT_GE(block.instrs.capacity(), BlockArena::InitialCapacity);

    // Grow well past the minted capacity, then hand the storage back.
    const std::size_t grown = BlockArena::InitialCapacity * 4;
    for (std::size_t i = 0; i < grown; ++i)
        block.instrs.push_back(b::movi(0, 1));
    const std::size_t grown_capacity = block.instrs.capacity();
    arena.release(std::move(block));

    // The recycled vector keeps the grown capacity -- the whole point
    // of pooling: a hot retranslation loop stops allocating.
    Block again = arena.acquire(0x200);
    EXPECT_EQ(arena.reuses(), 1u);
    EXPECT_EQ(arena.mints(), 1u);
    EXPECT_GE(again.instrs.capacity(), grown_capacity);
    EXPECT_EQ(again.guestPc, 0x200u);
}

TEST(BlockArena, ReturnedVectorsComeBackCleared)
{
    BlockArena arena;
    Block block = arena.acquire(0x100);
    block.instrs.push_back(b::movi(0, 7));
    block.instrs.push_back(b::movi(1, 9));
    arena.release(std::move(block));

    Block again = arena.acquire(0x300);
    EXPECT_TRUE(again.instrs.empty())
        << "recycled block leaked instructions from its previous life";
}

TEST(BlockArena, PoolIsBounded)
{
    BlockArena arena;
    // Release far more blocks than MaxPooled: the pool must not grow
    // without bound, and the overflow releases are simply freed.
    std::vector<Block> blocks;
    for (std::size_t i = 0; i < BlockArena::MaxPooled * 3; ++i)
        blocks.push_back(arena.acquire(i));
    for (Block &block : blocks)
        arena.release(std::move(block));

    // Draining the pool yields exactly MaxPooled reuses, then mints.
    const std::uint64_t mints_before = arena.mints();
    for (std::size_t i = 0; i < BlockArena::MaxPooled + 4; ++i)
        arena.acquire(i);
    EXPECT_EQ(arena.reuses(), BlockArena::MaxPooled);
    EXPECT_EQ(arena.mints(), mints_before + 4);
}

TEST(BlockArena, InterleavedAcquireReleaseUnderThreadPool)
{
    // The arena is deliberately single-threaded; the supported pattern
    // (one arena per task, as parallel sweeps construct one Frontend
    // per task) must survive heavily interleaved acquire/release.
    support::ThreadPool pool(4);
    constexpr std::size_t Tasks = 8;
    std::vector<std::uint64_t> reuses(Tasks), mints(Tasks);
    std::vector<std::function<void()>> tasks;
    for (std::size_t t = 0; t < Tasks; ++t)
        tasks.push_back([t, &reuses, &mints] {
            BlockArena arena;
            std::vector<Block> live;
            for (std::size_t round = 0; round < 200; ++round) {
                live.push_back(arena.acquire(round));
                live.back().instrs.push_back(b::movi(0, 1));
                // Alternate depth so acquire and release interleave in
                // varying orders rather than strict LIFO pairs.
                if (round % 3 != 0 && !live.empty()) {
                    arena.release(std::move(live.front()));
                    live.erase(live.begin());
                }
                if (live.size() > 5) {
                    arena.release(std::move(live.back()));
                    live.pop_back();
                }
            }
            for (Block &block : live)
                arena.release(std::move(block));
            reuses[t] = arena.reuses();
            mints[t] = arena.mints();
        });
    pool.run(std::move(tasks));
    for (std::size_t t = 0; t < Tasks; ++t) {
        EXPECT_EQ(reuses[t] + mints[t], 200u);
        EXPECT_GE(reuses[t], 1u);
    }
}

} // namespace
