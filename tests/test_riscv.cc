/**
 * @file
 * Tests for the RVWMO extension: model sanity on classic litmus shapes,
 * and Theorem-1 verification of the standard x86 -> RISC-V mapping
 * (trailing FENCE r,rw after loads, leading FENCE rw,w before stores,
 * amo.aqrl for RMWs).
 */

#include <gtest/gtest.h>

#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "litmus/random.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;

const models::X86Model kX86;
const models::RiscvModel kRiscv;

bool
allowed(const Program &p, const models::ConsistencyModel &m,
        const Condition &c)
{
    return c.existsIn(enumerateBehaviors(p, m));
}

TEST(Rvwmo, PlainProgramsAreWeak)
{
    // Without fences RVWMO allows the MP, SB and LB weak outcomes.
    EXPECT_TRUE(allowed(mp().program, kRiscv, mp().interesting));
    EXPECT_TRUE(allowed(sb().program, kRiscv, sb().interesting));
    EXPECT_TRUE(allowed(lb().program, kRiscv, lb().interesting));
}

TEST(Rvwmo, CoherenceAndAtomicityHold)
{
    Program p;
    p.name = "CoRR";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1)};
    t1.instrs = {Instr::load(0, LocX), Instr::load(1, LocX)};
    p.threads = {t0, t1};
    Condition weird;
    weird.reg(1, 0, 1).reg(1, 1, 0);
    EXPECT_FALSE(allowed(p, kRiscv, weird));

    Program cas;
    cas.name = "cas-race";
    Thread c0, c1;
    c0.instrs = {Instr::rmw(0, LocX, 0, 1)};
    c1.instrs = {Instr::rmw(0, LocX, 0, 2)};
    cas.threads = {c0, c1};
    Condition both;
    both.reg(0, 0, 0).reg(1, 0, 0);
    EXPECT_FALSE(allowed(cas, kRiscv, both));
}

TEST(Rvwmo, FencesRestoreOrder)
{
    // MP with fence rw,rw (Fmm) on both sides is forbidden.
    Program p = mp().program;
    p.threads[0].instrs.insert(p.threads[0].instrs.begin() + 1,
                               Instr::fenceOf(memcore::FenceKind::Fmm));
    p.threads[1].instrs.insert(p.threads[1].instrs.begin() + 1,
                               Instr::fenceOf(memcore::FenceKind::Fmm));
    EXPECT_FALSE(allowed(p, kRiscv, mp().interesting));
}

TEST(Rvwmo, AcquireReleaseOrder)
{
    // MP with release store / acquire load is forbidden.
    Program p;
    p.name = "MP+rl+aq";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1),
                 Instr::store(LocY, 1, memcore::Access::Release)};
    t1.instrs = {Instr::load(0, LocY, memcore::Access::Acquire),
                 Instr::load(1, LocX)};
    p.threads = {t0, t1};
    Condition weak;
    weak.reg(1, 0, 1).reg(1, 1, 0);
    EXPECT_FALSE(allowed(p, kRiscv, weak));
}

TEST(Rvwmo, StandardMappingRefinesCorpus)
{
    for (const LitmusTest &test : x86Corpus()) {
        const Program rv = mapping::mapX86ToRiscv(test.program);
        const auto result =
            checkRefinement(test.program, kX86, rv, kRiscv);
        EXPECT_TRUE(result.correct) << test.program.name;
    }
}

TEST(Rvwmo, FenceFreeMappingViolates)
{
    std::size_t violations = 0;
    for (const LitmusTest &test : x86Corpus()) {
        const Program rv =
            mapping::mapX86ToRiscv(test.program, /*with_fences=*/false);
        if (!checkRefinement(test.program, kX86, rv, kRiscv).correct)
            ++violations;
    }
    EXPECT_GE(violations, 3u); // MP/LB and friends must break.
}

TEST(Rvwmo, StandardMappingRefinesRandomPrograms)
{
    Rng rng(777);
    RandomProgramOptions opts;
    opts.maxInstrsPerThread = 3;
    opts.rmwPercent = 25;
    for (int i = 0; i < 120; ++i) {
        const Program src = randomProgram(rng, opts);
        const Program rv = mapping::mapX86ToRiscv(src);
        EXPECT_TRUE(checkRefinement(src, kX86, rv, kRiscv).correct)
            << src.toString();
    }
}

} // namespace
