/**
 * @file
 * Unit tests on the mapping schemes' *shapes*: the exact fence and
 * annotation placement of Figures 2, 3 and 7, instruction by instruction,
 * plus guard inheritance and the scheme/lowering name tables.
 */

#include <gtest/gtest.h>

#include "litmus/library.hh"
#include "mapping/schemes.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;
using namespace risotto::mapping;
using memcore::Access;
using memcore::FenceKind;
using memcore::RmwKind;

Program
oneThread(std::vector<Instr> instrs)
{
    Program p;
    p.name = "unit";
    Thread t;
    t.instrs = std::move(instrs);
    p.threads = {t};
    return p;
}

std::vector<Instr>
mappedInstrs(const Program &p)
{
    return p.threads.at(0).instrs;
}

TEST(MappingShapes, QemuFig2InsertsLeadingFences)
{
    // RMOV -> Fmr; ld and WMOV -> Fmw; st (Figure 2).
    const Program src =
        oneThread({Instr::load(0, LocX), Instr::store(LocY, 1)});
    const auto out =
        mappedInstrs(mapX86ToTcg(src, X86ToTcgScheme::Qemu));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].fence, FenceKind::Fmr);
    EXPECT_EQ(out[1].kind, Instr::Kind::Load);
    EXPECT_EQ(out[2].fence, FenceKind::Fmw);
    EXPECT_EQ(out[3].kind, Instr::Kind::Store);
}

TEST(MappingShapes, RisottoFig7aTrailingFrmLeadingFww)
{
    // RMOV -> ld; Frm and WMOV -> Fww; st (Figure 7a).
    const Program src =
        oneThread({Instr::load(0, LocX), Instr::store(LocY, 1)});
    const auto out =
        mappedInstrs(mapX86ToTcg(src, X86ToTcgScheme::Risotto));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].kind, Instr::Kind::Load);
    EXPECT_EQ(out[1].fence, FenceKind::Frm);
    EXPECT_EQ(out[2].fence, FenceKind::Fww);
    EXPECT_EQ(out[3].kind, Instr::Kind::Store);
}

TEST(MappingShapes, NoFencesEmitsNone)
{
    const Program src =
        oneThread({Instr::load(0, LocX), Instr::store(LocY, 1)});
    const auto out =
        mappedInstrs(mapX86ToTcg(src, X86ToTcgScheme::NoFences));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, Instr::Kind::Load);
    EXPECT_EQ(out[1].kind, Instr::Kind::Store);
}

TEST(MappingShapes, MfenceBecomesFscBecomesDmbff)
{
    const Program src = oneThread({Instr::fenceOf(FenceKind::MFence)});
    const Program ir = mapX86ToTcg(src, X86ToTcgScheme::Risotto);
    EXPECT_EQ(mappedInstrs(ir)[0].fence, FenceKind::Fsc);
    const Program arm = mapTcgToArm(ir, TcgToArmScheme::Risotto,
                                    RmwLowering::InlineCasal);
    EXPECT_EQ(mappedInstrs(arm)[0].fence, FenceKind::DmbFull);
}

TEST(MappingShapes, Fig7bLoweringByDirection)
{
    const Program ir = oneThread({
        Instr::fenceOf(FenceKind::Frr),
        Instr::fenceOf(FenceKind::Fww),
        Instr::fenceOf(FenceKind::Fwr),
        Instr::fenceOf(FenceKind::Facq),
        Instr::fenceOf(FenceKind::Frel),
    });
    const auto out = mappedInstrs(mapTcgToArm(
        ir, TcgToArmScheme::Risotto, RmwLowering::InlineCasal));
    // Facq/Frel generate nothing (Figure 7b).
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].fence, FenceKind::DmbLd);
    EXPECT_EQ(out[1].fence, FenceKind::DmbSt);
    EXPECT_EQ(out[2].fence, FenceKind::DmbFull);
}

TEST(MappingShapes, QemuLoweringDemotesFmrAndFullFencesStores)
{
    const Program ir = oneThread({
        Instr::fenceOf(FenceKind::Fmr),
        Instr::fenceOf(FenceKind::Fmw),
    });
    const auto out = mappedInstrs(
        mapTcgToArm(ir, TcgToArmScheme::Qemu, RmwLowering::HelperRmw1AL));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].fence, FenceKind::DmbLd);  // The unsound demotion.
    EXPECT_EQ(out[1].fence, FenceKind::DmbFull);
}

TEST(MappingShapes, RmwLoweringsProduceTheRightPrimitives)
{
    const Program ir = oneThread({Instr::rmw(0, LocX, 0, 1, RmwKind::Amo,
                                             Access::Sc, Access::Sc)});
    {
        const auto out = mappedInstrs(mapTcgToArm(
            ir, TcgToArmScheme::Risotto, RmwLowering::InlineCasal));
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0].rmwKind, RmwKind::Amo);
        EXPECT_EQ(out[0].readAccess, Access::Acquire);
        EXPECT_EQ(out[0].writeAccess, Access::Release);
    }
    {
        const auto out = mappedInstrs(mapTcgToArm(
            ir, TcgToArmScheme::Risotto, RmwLowering::FencedRmw2));
        ASSERT_EQ(out.size(), 3u);
        EXPECT_EQ(out[0].fence, FenceKind::DmbFull);
        EXPECT_EQ(out[1].rmwKind, RmwKind::LxSx);
        EXPECT_EQ(out[1].readAccess, Access::Plain);
        EXPECT_EQ(out[2].fence, FenceKind::DmbFull);
    }
    {
        const auto out = mappedInstrs(mapTcgToArm(
            ir, TcgToArmScheme::Qemu, RmwLowering::HelperRmw2AL));
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0].rmwKind, RmwKind::LxSx);
        EXPECT_EQ(out[0].readAccess, Access::Acquire);
        EXPECT_EQ(out[0].writeAccess, Access::Release);
    }
}

TEST(MappingShapes, DesiredFig3UsesAcquirePcAndRelease)
{
    const Program src = oneThread({
        Instr::load(0, LocX),
        Instr::store(LocY, 1),
        Instr::rmw(1, LocZ, 0, 1),
        Instr::fenceOf(FenceKind::MFence),
    });
    const auto out = mappedInstrs(mapX86ToArmDesired(src));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].readAccess, Access::AcquirePC); // LDAPR
    EXPECT_EQ(out[1].writeAccess, Access::Release);  // STLR
    EXPECT_EQ(out[2].rmwKind, RmwKind::Amo);         // casal
    EXPECT_EQ(out[2].readAccess, Access::Acquire);
    EXPECT_EQ(out[3].fence, FenceKind::DmbFull);
}

TEST(MappingShapes, RiscvMappingShape)
{
    const Program src = oneThread({
        Instr::load(0, LocX),
        Instr::store(LocY, 1),
        Instr::rmw(1, LocZ, 0, 1),
    });
    const auto out = mappedInstrs(mapX86ToRiscv(src));
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].kind, Instr::Kind::Load);
    EXPECT_EQ(out[1].fence, FenceKind::Frm); // fence r,rw
    EXPECT_EQ(out[2].fence, FenceKind::Fww); // fence w,w (Frm covers R->W)
    EXPECT_EQ(out[3].kind, Instr::Kind::Store);
    EXPECT_EQ(out[4].readAccess, Access::AcqRel); // amo.aqrl
    EXPECT_EQ(out[4].writeAccess, Access::AcqRel);
}

TEST(MappingShapes, GuardsAreInherited)
{
    // A guarded store's inserted fence must carry the same guard (it
    // belongs to the same conditional block, as in MPQ's translation).
    Program src = oneThread({
        Instr::load(0, LocX),
        Instr::store(LocY, 1).guarded(0, 1),
    });
    const auto out =
        mappedInstrs(mapX86ToTcg(src, X86ToTcgScheme::Risotto));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[2].kind, Instr::Kind::Fence);
    EXPECT_EQ(out[2].guardReg, 0);
    EXPECT_EQ(out[2].guardVal, 1);
    EXPECT_EQ(out[3].guardReg, 0);
}

TEST(MappingShapes, NamesAreStable)
{
    EXPECT_EQ(schemeName(X86ToTcgScheme::Qemu), "qemu");
    EXPECT_EQ(schemeName(X86ToTcgScheme::Risotto), "risotto");
    EXPECT_EQ(schemeName(TcgToArmScheme::Qemu), "qemu");
    EXPECT_EQ(rmwLoweringName(RmwLowering::InlineCasal), "inline-casal");
    EXPECT_EQ(rmwLoweringName(RmwLowering::FencedRmw2),
              "dmbff-rmw2-dmbff");
}

} // namespace
