/**
 * @file
 * The rv64 host backend, end to end: ISA encode/decode, emitter label
 * fixups, RVWMO-costed execution on the simulated machine, cross-host
 * differential runs through the DBT (bit-identical guest behaviour and
 * verify/opt counter parity against aarch), cross-host snapshot
 * refusal, and the verifier's emitted-rv64 guarantee extraction
 * separating the correct mapping from weakened schemes.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dbt/backend.hh"
#include "dbt/config.hh"
#include "dbt/dbt.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "machine/machine.hh"
#include "persist/fingerprint.hh"
#include "persist/snapshot.hh"
#include "rv64/emitter.hh"
#include "rv64/isa.hh"
#include "support/error.hh"
#include "support/hostisa.hh"
#include "tcg/optimizer.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

using namespace risotto;
using machine::Machine;
using machine::MachineConfig;
using rv64::RInstr;
using rv64::ROp;
using support::HostIsa;

namespace
{

// --- ISA ----------------------------------------------------------------

TEST(Rv64Isa, EncodeDecodeRoundTripsEveryOp)
{
    std::vector<RInstr> sample;
    auto push = [&](RInstr i) { sample.push_back(i); };

    // Lui's RInstr immediate is the full sign-extended imm20 << 12.
    push({.op = ROp::Lui, .rd = 5, .imm = 0x12345 << 12});
    push({.op = ROp::Lui, .rd = 31, .imm = INT32_MIN});
    push({.op = ROp::Jal, .rd = 1, .imm = -64});
    for (ROp op : {ROp::Beq, ROp::Bne, ROp::Blt, ROp::Bge, ROp::Bltu,
                   ROp::Bgeu})
        push({.op = op, .rs1 = 7, .rs2 = 8, .imm = op == ROp::Beq ? -500
                                                                  : 500});
    push({.op = ROp::Lbu, .rd = 9, .rs1 = 10, .imm = -2048});
    push({.op = ROp::Ld, .rd = 11, .rs1 = 12, .imm = 2040});
    push({.op = ROp::Sb, .rs1 = 13, .rs2 = 14, .imm = 2047});
    push({.op = ROp::Sd, .rs1 = 15, .rs2 = 16, .imm = -8});
    for (ROp op : {ROp::Addi, ROp::Slti, ROp::Sltiu, ROp::Xori, ROp::Ori,
                   ROp::Andi})
        push({.op = op, .rd = 17, .rs1 = 18, .imm = -1234});
    push({.op = ROp::Slli, .rd = 19, .rs1 = 20, .imm = 63});
    push({.op = ROp::Srli, .rd = 21, .rs1 = 22, .imm = 1});
    for (ROp op : {ROp::Add, ROp::Sub, ROp::Slt, ROp::Sltu, ROp::Xor,
                   ROp::Or, ROp::And, ROp::Mul, ROp::Divu})
        push({.op = op, .rd = 23, .rs1 = 24, .rs2 = 25});
    push({.op = ROp::Fence, .pred = rv64::FenceR, .succ = rv64::FenceRW});
    push({.op = ROp::Fence, .pred = rv64::FenceRW, .succ = rv64::FenceRW});
    push({.op = ROp::Fence, .pred = rv64::FenceW, .succ = rv64::FenceW});
    push({.op = ROp::Ecall});
    push({.op = ROp::Ebreak});
    for (bool aq : {false, true})
        for (bool rl : {false, true}) {
            push({.op = ROp::LrD, .rd = 26, .rs1 = 27, .aq = aq, .rl = rl});
            push({.op = ROp::ScD, .rd = 28, .rs1 = 29, .rs2 = 30, .aq = aq,
                  .rl = rl});
            push({.op = ROp::AmoAddD, .rd = 1, .rs1 = 2, .rs2 = 3, .aq = aq,
                  .rl = rl});
            push({.op = ROp::AmoSwapD, .rd = 4, .rs1 = 5, .rs2 = 6,
                  .aq = aq, .rl = rl});
        }
    push({.op = ROp::Helper, .imm = 77, .helper = 255});
    push({.op = ROp::ExitTb, .imm = (1 << 20) - 1});

    for (const RInstr &i : sample) {
        const std::uint32_t word = rv64::encode(i);
        const RInstr back = rv64::decode(word);
        EXPECT_EQ(back.toString(), i.toString());
        EXPECT_EQ(rv64::encode(back), word);
    }
}

TEST(Rv64Isa, EncodePanicsOnFieldOverflow)
{
    // Branch displacement past the 12-bit word-offset range.
    EXPECT_THROW(rv64::encode({.op = ROp::Beq, .imm = 1 << 20}),
                 PanicError);
    // I-type immediate past 12 bits.
    EXPECT_THROW(rv64::encode({.op = ROp::Addi, .rd = 1, .imm = 4096}),
                 PanicError);
    EXPECT_THROW(rv64::decode(0xffffffffu), PanicError);
}

// --- Emitter + machine --------------------------------------------------

/** A one-off rv64 code sequence on the simulated RVWMO machine. */
struct Rv64Program
{
    rv64::CodeBuffer code;
    gx86::Memory memory;
    rv64::Emitter em{code};

    Machine
    makeMachine()
    {
        em.finish();
        MachineConfig config;
        config.hostIsa = HostIsa::Rv64;
        return Machine(code, memory, config);
    }
};

TEST(Rv64Machine, LiLadderAndArithmetic)
{
    Rv64Program p;
    p.em.li(1, 6);
    p.em.li(2, 7);
    p.em.mul(1, 1, 2);
    p.em.li(0, 0); // exit syscall: x0 = 0, code in x1
    p.em.ecall();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).exitCode, 42);
}

TEST(Rv64Machine, LiMaterializesWideConstants)
{
    // Values needing the full lui/addi/slli ladder, incl. sign-hostile
    // low halves.
    for (std::uint64_t value :
         {std::uint64_t{0}, std::uint64_t{0x800}, std::uint64_t{0xfff},
          std::uint64_t{0x12345678u}, std::uint64_t{0xdeadbeefcafef00dull},
          ~std::uint64_t{0}}) {
        Rv64Program p;
        p.em.li(1, value);
        p.em.li(0, 0);
        p.em.ecall();
        Machine m = p.makeMachine();
        m.addCore(0);
        ASSERT_TRUE(m.run());
        EXPECT_EQ(static_cast<std::uint64_t>(m.core(0).exitCode), value)
            << "li 0x" << std::hex << value;
    }
}

TEST(Rv64Machine, BranchFixupsResolveForwardAndBackward)
{
    Rv64Program p;
    auto &em = p.em;
    em.li(1, 0);  // acc
    em.li(2, 10); // counter
    em.li(3, 0);  // zero
    const auto skip = em.newLabel();
    em.jal(0, skip); // forward fixup over a poison write
    em.li(1, 999);
    em.bind(skip);
    const auto loop = em.newLabel();
    em.bind(loop);
    em.add(1, 1, 2);
    em.addi(2, 2, -1);
    em.bne(2, 3, loop); // backward branch
    em.li(0, 0);
    em.ecall();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).exitCode, 55);
}

TEST(Rv64Machine, LrScAndAmoSemantics)
{
    Rv64Program p;
    auto &em = p.em;
    em.li(5, 0x400000);
    em.li(6, 7);
    em.sd(6, 5, 0);
    em.amoadd(7, 6, 5, true, true); // x7 <- 7, [x5] <- 14
    em.lr(8, 5, true, false);       // x8 <- 14
    em.addi(8, 8, 1);
    em.sc(9, 8, 5, false, true); // success: x9 <- 0, [x5] <- 15
    em.ld(10, 5, 0);
    em.add(1, 7, 10); // 7 + 15
    em.add(1, 1, 9);  // + sc status (0)
    em.li(0, 0);
    em.ecall();
    Machine m = p.makeMachine();
    m.addCore(0);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(m.core(0).exitCode, 22);
    EXPECT_EQ(p.memory.load64(0x400000), 15u);
}

// --- Cross-host differential through the DBT ----------------------------

std::vector<dbt::ThreadSpec>
fourThreads()
{
    std::vector<dbt::ThreadSpec> threads(4);
    for (std::size_t t = 0; t < threads.size(); ++t)
        threads[t].regs[0] = t;
    return threads;
}

dbt::RunResult
runUnderHost(const gx86::GuestImage &image, HostIsa host)
{
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.validateTranslations = true;
    config.host = host;
    dbt::Dbt engine(image, config);
    return engine.run(fourThreads());
}

/** The verify.* / opt.* slice of a run's counters: translation-quality
 * numbers that must not depend on which host ISA was emitted. */
std::map<std::string, std::uint64_t>
qualityCounters(const dbt::RunResult &result)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[key, value] : result.stats.all())
        if (key.rfind("verify.", 0) == 0 || key.rfind("opt.", 0) == 0)
            out[key] = value;
    return out;
}

TEST(Rv64Backend, WorkloadsBitIdenticalAndCounterParityAcrossHosts)
{
    std::size_t checked = 0;
    for (workloads::WorkloadSpec spec : workloads::fullSuite()) {
        if (checked == 3)
            break; // Full-suite parity runs in bench/tab_hostbackend.
        ++checked;
        spec.iterations = 40;
        const gx86::GuestImage image =
            workloads::buildGuestWorkload(spec);

        const auto on_aarch = runUnderHost(image, HostIsa::Aarch);
        const auto on_rv64 = runUnderHost(image, HostIsa::Rv64);

        ASSERT_TRUE(on_aarch.finished) << spec.name;
        ASSERT_TRUE(on_rv64.finished) << spec.name;
        EXPECT_EQ(on_aarch.validationViolations, 0u) << spec.name;
        EXPECT_EQ(on_rv64.validationViolations, 0u) << spec.name;
        EXPECT_EQ(on_aarch.exitCodes, on_rv64.exitCodes) << spec.name;
        EXPECT_EQ(on_aarch.outputs, on_rv64.outputs) << spec.name;
        EXPECT_GT(on_rv64.stats.get("verify.blocks_checked"), 0u)
            << spec.name;
        EXPECT_EQ(qualityCounters(on_aarch), qualityCounters(on_rv64))
            << spec.name;
    }
    EXPECT_EQ(checked, 3u);
}

// --- Snapshot host keying -----------------------------------------------

gx86::GuestImage
sampleGuest()
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(128);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(1, 0);
    a.movri(2, 40);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.load(4, 3, 0);
    a.add(1, 4);
    a.store(3, 8, 1);
    a.addi(1, 3);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

TEST(Rv64Persist, FingerprintKeysOnHostBackend)
{
    dbt::DbtConfig aarch_config = dbt::DbtConfig::risotto();
    aarch_config.host = HostIsa::Aarch;
    dbt::DbtConfig rv64_config = aarch_config;
    rv64_config.host = HostIsa::Rv64;
    EXPECT_NE(persist::configFingerprint(aarch_config),
              persist::configFingerprint(rv64_config));
}

TEST(Rv64Persist, SnapshotRefusesCrossHostLoad)
{
    const gx86::GuestImage image = sampleGuest();

    dbt::DbtConfig aarch_config = dbt::DbtConfig::risotto();
    aarch_config.host = HostIsa::Aarch;
    dbt::Dbt producer(image, aarch_config);
    const auto cold = producer.run(fourThreads());
    ASSERT_TRUE(cold.finished);
    const auto bytes = persist::serialize(producer.exportSnapshot());

    persist::ParseReport parse_report;
    const persist::Snapshot snap = persist::parse(bytes, parse_report);

    // Same host: records load.
    dbt::Dbt same_host(image, aarch_config);
    const auto accepted = same_host.importSnapshot(snap, true);
    EXPECT_TRUE(accepted.applied);
    EXPECT_GT(accepted.loaded, 0u);

    // Other host: aarch-encoded translations must not reach an engine
    // emitting rv64 -- the fingerprint mismatch refuses the snapshot.
    dbt::DbtConfig rv64_config = aarch_config;
    rv64_config.host = HostIsa::Rv64;
    dbt::Dbt cross_host(image, rv64_config);
    const auto refused = cross_host.importSnapshot(snap, true);
    EXPECT_FALSE(refused.applied);
    EXPECT_EQ(refused.loaded, 0u);

    // And the refusing engine still runs the guest correctly cold.
    const auto rerun = cross_host.run(fourThreads());
    EXPECT_TRUE(rerun.finished);
    EXPECT_EQ(rerun.exitCodes, cold.exitCodes);
    EXPECT_EQ(rerun.outputs, cold.outputs);
}

// --- Verifier over emitted rv64 -----------------------------------------

/** Slot allocator for compiling outside an engine: numbers exits. */
struct DummySlots : dbt::ExitSlotAllocator
{
    std::uint32_t next = 1;
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t, aarch::CodeAddr,
                             bool) override
    {
        return next++;
    }
    std::uint32_t dynamicSlot() override { return 0; }
};

/** Sweep all 16 optimizer ablations of @p config over @p image and
 * return every violation the validator found against the emitted host
 * code. */
std::vector<verify::Violation>
sweepBlock(const gx86::GuestImage &image, dbt::DbtConfig config)
{
    std::vector<verify::Violation> violations;
    dbt::Frontend frontend(image, config, nullptr);
    const std::vector<gx86::Instruction> guest =
        frontend.decodeBlock(image.entry);
    for (int combo = 0; combo < 16; ++combo) {
        config.optimizer.fenceMerging = (combo & 1) != 0;
        config.optimizer.constantFolding = (combo & 2) != 0;
        config.optimizer.memoryElimination = (combo & 4) != 0;
        config.optimizer.deadCodeElimination = (combo & 8) != 0;

        tcg::Block block = frontend.translate(image.entry);
        tcg::optimize(block, config.optimizer);

        aarch::CodeBuffer buffer;
        DummySlots slots;
        dbt::Backend backend(buffer, config);
        const aarch::CodeAddr entry = backend.compile(block, slots);
        const auto host = verify::decodeHostRange(config.host, buffer,
                                                  entry, buffer.end());

        verify::ValidatorOptions vo;
        vo.rmw = config.rmw;
        const verify::TbValidator validator(vo);
        const auto report =
            validator.validate(guest, block, host, image.entry, false);
        for (const auto &v : report.violations)
            violations.push_back(v);
    }
    return violations;
}

/** A fence-sensitive block: cross-location W->W and R->R pairs that
 * TSO orders but an unfenced weak-memory host does not. Deliberately
 * RMW-free: an atomic in the middle would transitively order every
 * pair and mask a missing-fence scheme. */
gx86::GuestImage
fenceSensitiveGuest()
{
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(0, 0x1000);
    a.movri(1, 0x2000);
    a.storei(0, 0, 1);
    a.load(4, 1, 0);
    a.store(1, 8, 4);
    a.load(6, 0, 16);
    a.hlt();
    return a.finish("main");
}

/** A locked-RMW block with surrounding plain accesses, separating the
 * RMW-lowering schemes. */
gx86::GuestImage
rmwGuest()
{
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(0, 0x1000);
    a.movri(1, 0x2000);
    a.load(4, 1, 0);
    a.lockXadd(0, 8, 5);
    a.lockCmpxchg(0, 16, 6);
    a.store(1, 8, 4);
    a.hlt();
    return a.finish("main");
}

TEST(Rv64Verify, CorrectMappingValidatesCleanOverEmittedRv64)
{
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.host = HostIsa::Rv64;
    EXPECT_TRUE(sweepBlock(fenceSensitiveGuest(), config).empty());
    EXPECT_TRUE(sweepBlock(rmwGuest(), config).empty());
}

TEST(Rv64Verify, WeakenedSchemesAreFlaggedWithNamedEventPairs)
{
    // nofences: plain loads/stores with no ordering instructions.
    dbt::DbtConfig nofences = dbt::DbtConfig::qemuNoFences();
    nofences.host = HostIsa::Rv64;
    const auto unfenced = sweepBlock(fenceSensitiveGuest(), nofences);
    ASSERT_FALSE(unfenced.empty());
    for (const auto &v : unfenced) {
        EXPECT_FALSE(v.from.empty());
        EXPECT_FALSE(v.to.empty());
    }

    // qemu-rmw2: the GCC-9 exclusive-pair helper lowering (Section 3).
    dbt::DbtConfig rmw2 = dbt::DbtConfig::qemu();
    rmw2.rmw = mapping::RmwLowering::HelperRmw2AL;
    rmw2.host = HostIsa::Rv64;
    EXPECT_FALSE(sweepBlock(rmwGuest(), rmw2).empty());
}

TEST(Rv64Verify, WawEliminationKeepsAccessMatchingInSync)
{
    // Regression: WAW memory elimination erases the *earlier* of two
    // same-address stores. A class-only greedy matcher could bind the
    // surviving store to the erased store's slot and slide every later
    // access onto the wrong twin, reporting phantom missing-fence
    // violations past the block's MFENCEs. The embedding matcher must
    // validate this shape cleanly on both hosts.
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(0, 0x1000);
    a.movri(1, 0x2000);
    a.movri(2, 0x3000);
    a.storei(0, 32, 223);  // erased by WAW elimination
    a.store(0, 32, 4);     // survivor
    a.mfence();
    a.store(1, 0, 5);
    a.load(4, 2, 48);
    a.load8(5, 2, 0);
    a.hlt();
    const gx86::GuestImage image = a.finish("main");

    for (HostIsa host : {HostIsa::Aarch, HostIsa::Rv64}) {
        dbt::DbtConfig config = dbt::DbtConfig::risotto();
        config.host = host;
        const auto violations = sweepBlock(image, config);
        EXPECT_TRUE(violations.empty())
            << support::hostIsaName(host) << ": "
            << (violations.empty() ? "" : violations.front().toString());
    }
}

} // namespace
