/**
 * @file
 * Litmus/model integration tests: the classic tests behave per their
 * architecture's model, reproducing Section 2 and Section 5.2.
 */

#include <gtest/gtest.h>

#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "models/model.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;

using memcore::Access;
using memcore::FenceKind;
using memcore::RmwKind;

const models::ScModel kSc;
const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArmFixed(models::ArmModel::AmoRule::Corrected);
const models::ArmModel kArmOrig(models::ArmModel::AmoRule::Original);

bool
allowed(const Program &p, const models::ConsistencyModel &m,
        const Condition &cond)
{
    return cond.existsIn(enumerateBehaviors(p, m));
}

TEST(LitmusBasics, MpForbiddenUnderX86AndSc)
{
    const LitmusTest t = mp();
    EXPECT_FALSE(allowed(t.program, kX86, t.interesting));
    EXPECT_FALSE(allowed(t.program, kSc, t.interesting));
}

TEST(LitmusBasics, MpAllowedUnderPlainArmAndTcg)
{
    // The same access pattern with plain accesses is weak on Arm and in
    // the (unfenced) TCG IR model.
    const LitmusTest t = mp();
    EXPECT_TRUE(allowed(t.program, kArmFixed, t.interesting));
    EXPECT_TRUE(allowed(t.program, kTcg, t.interesting));
}

TEST(LitmusBasics, SbAllowedUnderX86ForbiddenUnderSc)
{
    const LitmusTest t = sb();
    EXPECT_TRUE(allowed(t.program, kX86, t.interesting));
    EXPECT_FALSE(allowed(t.program, kSc, t.interesting));
}

TEST(LitmusBasics, LbForbiddenUnderX86AllowedUnderArm)
{
    const LitmusTest t = lb();
    EXPECT_FALSE(allowed(t.program, kX86, t.interesting));
    EXPECT_TRUE(allowed(t.program, kArmFixed, t.interesting));
}

TEST(LitmusBasics, CoherenceHoldsEverywhere)
{
    // CoRR: new-then-old reads of one location violate sc-per-loc.
    Program p;
    p.name = "CoRR";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1)};
    t1.instrs = {Instr::load(0, LocX), Instr::load(1, LocX)};
    p.threads = {t0, t1};
    Condition weird;
    weird.reg(1, 0, 1).reg(1, 1, 0);
    EXPECT_FALSE(allowed(p, kArmFixed, weird));
    EXPECT_FALSE(allowed(p, kTcg, weird));
    EXPECT_FALSE(allowed(p, kX86, weird));
}

TEST(LitmusBasics, SbWithMfencesForbidden)
{
    Program p;
    p.name = "SB+mfences";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1), Instr::fenceOf(FenceKind::MFence),
                 Instr::load(0, LocY)};
    t1.instrs = {Instr::store(LocY, 1), Instr::fenceOf(FenceKind::MFence),
                 Instr::load(0, LocX)};
    p.threads = {t0, t1};
    Condition both_zero;
    both_zero.reg(0, 0, 0).reg(1, 0, 0);
    EXPECT_FALSE(allowed(p, kX86, both_zero));
}

TEST(LitmusBasics, SbWithDmbffForbiddenOnArm)
{
    Program p;
    p.name = "SB+dmbs";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1), Instr::fenceOf(FenceKind::DmbFull),
                 Instr::load(0, LocY)};
    t1.instrs = {Instr::store(LocY, 1), Instr::fenceOf(FenceKind::DmbFull),
                 Instr::load(0, LocX)};
    p.threads = {t0, t1};
    Condition both_zero;
    both_zero.reg(0, 0, 0).reg(1, 0, 0);
    EXPECT_FALSE(allowed(p, kArmFixed, both_zero));
    EXPECT_FALSE(allowed(p, kArmOrig, both_zero));
}

TEST(LitmusBasics, MpWithDmbLdStForbiddenOnArm)
{
    Program p;
    p.name = "MP+dmbst+dmbld";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1), Instr::fenceOf(FenceKind::DmbSt),
                 Instr::store(LocY, 1)};
    t1.instrs = {Instr::load(0, LocY), Instr::fenceOf(FenceKind::DmbLd),
                 Instr::load(1, LocX)};
    p.threads = {t0, t1};
    Condition weak;
    weak.reg(1, 0, 1).reg(1, 1, 0);
    EXPECT_FALSE(allowed(p, kArmFixed, weak));
    // DMBST alone on the writer with no reader fence stays weak.
    Program p2 = p;
    p2.threads[1].instrs = {Instr::load(0, LocY), Instr::load(1, LocX)};
    EXPECT_TRUE(allowed(p2, kArmFixed, weak));
}

TEST(LitmusBasics, ReleaseAcquireMpForbiddenOnArm)
{
    Program p;
    p.name = "MP+rel+acq";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1),
                 Instr::store(LocY, 1, Access::Release)};
    t1.instrs = {Instr::load(0, LocY, Access::Acquire),
                 Instr::load(1, LocX)};
    p.threads = {t0, t1};
    Condition weak;
    weak.reg(1, 0, 1).reg(1, 1, 0);
    EXPECT_FALSE(allowed(p, kArmFixed, weak));
}

TEST(LitmusBasics, AcquirePCMpForbiddenOnArm)
{
    // LDAPR (acquirePC) also orders successors, enough for MP.
    Program p;
    p.name = "MP+rel+acqPC";
    Thread t0, t1;
    t0.instrs = {Instr::store(LocX, 1),
                 Instr::store(LocY, 1, Access::Release)};
    t1.instrs = {Instr::load(0, LocY, Access::AcquirePC),
                 Instr::load(1, LocX)};
    p.threads = {t0, t1};
    Condition weak;
    weak.reg(1, 0, 1).reg(1, 1, 0);
    EXPECT_FALSE(allowed(p, kArmFixed, weak));
}

TEST(LitmusRmw, AtomicityHoldsInAllModels)
{
    // Two competing CASes on X: both cannot succeed from the same old
    // value.
    Program p;
    p.name = "CAS-race";
    Thread t0, t1;
    t0.instrs = {Instr::rmw(0, LocX, 0, 1)};
    t1.instrs = {Instr::rmw(0, LocX, 0, 2)};
    p.threads = {t0, t1};
    // Both succeed: r0 == 0 in both threads. Must be impossible.
    Condition both;
    both.reg(0, 0, 0).reg(1, 0, 0);
    EXPECT_FALSE(allowed(p, kX86, both));
    EXPECT_FALSE(allowed(p, kTcg, both));
    EXPECT_FALSE(allowed(p, kArmFixed, both));
    // One succeeding is possible.
    Condition t0_wins;
    t0_wins.reg(0, 0, 0).mem(LocX, 1);
    EXPECT_TRUE(allowed(p, kX86, t0_wins));
}

TEST(LitmusRmw, X86RmwActsAsFullFence)
{
    // SB with RMWs in place of plain stores is forbidden in x86.
    const LitmusTest t = sbal();
    EXPECT_FALSE(allowed(t.program, kX86, t.interesting));
}

TEST(LitmusEnumerator, StatsAreSane)
{
    EnumerateStats stats;
    const LitmusTest t = mp();
    enumerateBehaviors(t.program, kSc, &stats);
    EXPECT_GT(stats.candidates, 0u);
    EXPECT_GE(stats.candidates, stats.wellFormed);
    EXPECT_GE(stats.wellFormed, stats.consistent);
    EXPECT_GT(stats.consistent, 0u);
}

TEST(LitmusEnumerator, ScBehaviorsOfMpAreExactlyInterleavings)
{
    // MP has exactly 3 SC outcomes for (a, b): (0,0), (1,0 excluded!),
    // (1,1), (0,1)... enumerate and check precisely.
    const LitmusTest t = mp();
    const BehaviorSet set = enumerateBehaviors(t.program, kSc);
    // Collect (a, b) pairs.
    std::set<std::pair<Val, Val>> pairs;
    for (const Outcome &o : set)
        pairs.insert({o.regs[1].at(0), o.regs[1].at(1)});
    const std::set<std::pair<Val, Val>> expected = {
        {0, 0}, {0, 1}, {1, 1}};
    EXPECT_EQ(pairs, expected);
}

TEST(LitmusEnumerator, GuardedInstructionSkipped)
{
    // Guard fails => RMW does not execute, X keeps its init value.
    Program p;
    p.name = "guard";
    Thread t0;
    t0.instrs = {Instr::load(0, LocY),
                 Instr::rmw(1, LocX, 0, 5).guarded(0, 1)};
    p.threads = {t0};
    const BehaviorSet set = enumerateBehaviors(p, kSc);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.begin()->memory.at(LocX), 0);
    EXPECT_EQ(set.begin()->regs[0].at(0), 0);
}

} // namespace
