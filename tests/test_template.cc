/**
 * @file
 * Tier-0.5 template translator tests: the per-engine obligation-graph
 * check of every template kind (in the style of the fusion-pattern
 * checks), the planner's decline rules pinned one by one, the
 * weakened-template canary (drop a fence from one template body and the
 * validator must disable exactly that kind), the self-disable
 * conditions, and the corpus-wide differential -- the template tier
 * must be invisible to every guest-visible result, to the verify. /
 * opt. counters, and to the fault-injection schedule.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "dbt/dbt.hh"
#include "dbt/templates.hh"
#include "gx86/assembler.hh"
#include "gx86/decoded.hh"
#include "gx86/image.hh"
#include "litmus/library.hh"
#include "persist/snapshot.hh"
#include "risotto/risotto.hh"
#include "support/faultinject.hh"
#include "verify/templates.hh"
#include "workloads/litmusimage.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::TemplateConfig;
using dbt::TemplateKind;
using dbt::ThreadSpec;
using gx86::GuestImage;
using gx86::Instruction;
using gx86::Opcode;
using workloads::WorkloadSpec;

Instruction
ins(Opcode op)
{
    Instruction in;
    in.op = op;
    in.length = 4;
    return in;
}

Instruction
movri(int rd, std::int64_t imm)
{
    Instruction in = ins(Opcode::MovRI);
    in.rd = rd;
    in.imm = imm;
    return in;
}

Instruction
loadIns(int rd, int rb, std::int32_t off)
{
    Instruction in = ins(Opcode::Load);
    in.rd = rd;
    in.rb = rb;
    in.off = off;
    return in;
}

Instruction
storeIns(int rb, std::int32_t off, int rs)
{
    Instruction in = ins(Opcode::Store);
    in.rb = rb;
    in.off = off;
    in.rs = rs;
    return in;
}

/** A program whose fat entry block and hot loop body are made entirely
 * of template-covered shapes that no optimizer pass rewrites: stores to
 * distinct slots interleaved with ALU work, loads only after the last
 * store (a load *before* a store would put Frm next to Fww and the
 * fence-merge decline would send the block to tier 1). The exit block
 * ends in a syscall, so it always declines -- mixed coverage on
 * purpose. */
GuestImage
templateImage(std::int64_t iters)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(512);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(6, 7);
    a.movri(2, iters);
    // g0 is never written in this block, so adding it keeps g2's value
    // but makes it unknown to the constant folder: the cmpri below must
    // not fold (a foldable compare would decline the whole block).
    a.add(2, 0);
    for (int k = 0; k < 20; ++k) {
        a.store(3, 8 * k, 6);
        a.add(6, 1);
    }
    for (int k = 0; k < 6; ++k)
        a.load(4, 3, 256 + 8 * k);
    const auto out = a.newLabel();
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Le, out);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.store(3, 384, 6);
    a.add(6, 4);
    a.store(3, 392, 6);
    a.load(5, 3, 400);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.bind(out);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

/** A hot template-covered loop body longer than one block (the 64-
 * instruction cap splits it), so tier-2 region formation has a seam to
 * subsume -- template-translated blocks must still promote. */
GuestImage
splitTemplateLoop(std::int64_t iters)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(1024);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(6, 7);
    a.movri(2, iters);
    const auto loop = a.newLabel();
    const auto head = a.newLabel();
    a.jmp(head);
    a.bind(head);
    a.bind(loop);
    for (int k = 0; k < 70; ++k)
        a.store(3, 8 * k, 6);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

/** A hot loop whose body contains an MFENCE between a store and a
 * load: the canonical consumer of the Fence template (and, under the
 * weakened-template canary, the block that must fall back to tier 1). */
GuestImage
fencedTemplateLoop(std::int64_t iters)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(128);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(6, 7);
    a.movri(2, iters);
    const auto loop = a.newLabel();
    const auto head = a.newLabel();
    a.jmp(head);
    a.bind(head);
    a.bind(loop);
    a.store(3, 0, 6);
    a.mfence();
    a.load(4, 3, 64);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

std::map<std::string, std::uint64_t>
prefixedStats(const StatSet &stats, const std::string &prefix)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, value] : stats.all())
        if (name.rfind(prefix, 0) == 0)
            out[name] = value;
    return out;
}

/** The tier-1 counters the template tier promises to reproduce
 * exactly (per-attempt, fault schedule included). */
void
expectTranslationParity(const StatSet &on, const StatSet &off,
                        const std::string &tag)
{
    for (const char *name :
         {"dbt.tbs_translated", "dbt.ir_ops_pre_opt",
          "dbt.ir_ops_post_opt", "dbt.host_words",
          "dbt.translate_retries", "dbt.buffer_full",
          "dbt.tier2_attempts"})
        EXPECT_EQ(on.get(name), off.get(name)) << tag << " " << name;
}

verify::ValidatorOptions
optionsFor(const DbtConfig &config)
{
    verify::ValidatorOptions options;
    options.rmw = config.rmw;
    return options;
}

struct CanaryGuard
{
    ~CanaryGuard() { dbt::testResetTemplates(); }
};

// --- Per-engine obligation-graph check ---------------------------------------

TEST(TemplateValidation, EveryKindPassesTheValidator)
{
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    const auto probes = dbt::buildTemplateProbes(config, templates);
    ASSERT_FALSE(probes.empty());
    const auto reports =
        verify::validateTemplatePatterns(probes, optionsFor(config));
    // Under the inline-RMW risotto preset every kind is probed.
    ASSERT_EQ(reports.size(), dbt::TemplateKindCount);
    std::uint64_t pairs = 0;
    for (const auto &report : reports) {
        EXPECT_TRUE(report.ok()) << report.name;
        EXPECT_GT(report.probesChecked, 0u) << report.name;
        pairs += report.pairsChecked;
    }
    EXPECT_GT(pairs, 0u);
    EXPECT_EQ(dbt::applyTemplateReports(reports, templates), 0u);
    for (std::size_t k = 0; k < dbt::TemplateKindCount; ++k)
        EXPECT_TRUE(
            templates.enabled(static_cast<TemplateKind>(k)))
            << dbt::templateKindName(static_cast<TemplateKind>(k));
}

TEST(TemplateValidation, QemuPresetSkipsHelperRmwKinds)
{
    const DbtConfig config = DbtConfig::qemu();
    EXPECT_FALSE(
        dbt::templateKindFor(ins(Opcode::LockCmpxchg), config)
            .has_value());
    EXPECT_FALSE(
        dbt::templateKindFor(ins(Opcode::LockXadd), config).has_value());
    TemplateConfig templates;
    const auto probes = dbt::buildTemplateProbes(config, templates);
    const auto reports =
        verify::validateTemplatePatterns(probes, optionsFor(config));
    ASSERT_EQ(reports.size(), dbt::TemplateKindCount - 2);
    for (const auto &report : reports)
        EXPECT_TRUE(report.ok()) << report.name;
}

TEST(TemplateValidation, FencelessSchemeDisablesMemoryKinds)
{
    // qemuNoFences is the paper's deliberately-incorrect variant: its
    // fence-free mappings cannot discharge the x86 load/load and
    // store/store obligations, so the pair probes must catch exactly
    // the memory-access kinds and leave pure-register kinds alone.
    const DbtConfig config = DbtConfig::qemuNoFences();
    TemplateConfig templates;
    const auto probes = dbt::buildTemplateProbes(config, templates);
    const auto reports =
        verify::validateTemplatePatterns(probes, optionsFor(config));
    const std::size_t disabled =
        dbt::applyTemplateReports(reports, templates);
    EXPECT_GE(disabled, 2u);
    EXPECT_FALSE(templates.enabled(TemplateKind::Load));
    EXPECT_FALSE(templates.enabled(TemplateKind::Store));
    EXPECT_TRUE(templates.enabled(TemplateKind::Alu));
    EXPECT_TRUE(templates.enabled(TemplateKind::Jump));
    EXPECT_TRUE(templates.enabled(TemplateKind::MovImm));
}

TEST(TemplateValidation, BrokenReportDisablesOnlyItsKind)
{
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    const auto probes = dbt::buildTemplateProbes(config, templates);
    auto reports =
        verify::validateTemplatePatterns(probes, optionsFor(config));
    verify::Violation fake;
    reports[0].violations.push_back(fake);
    EXPECT_EQ(dbt::applyTemplateReports(reports, templates), 1u);
    EXPECT_FALSE(templates.enabled(
        static_cast<TemplateKind>(reports[0].kind)));
    for (std::size_t k = 1; k < reports.size(); ++k)
        EXPECT_TRUE(templates.enabled(
            static_cast<TemplateKind>(reports[k].kind)))
            << reports[k].name;
}

// --- Planner decline rules ---------------------------------------------------

TEST(TemplatePlanner, UntemplatedShapesDecline)
{
    const DbtConfig config = DbtConfig::risotto();
    EXPECT_FALSE(
        dbt::templateKindFor(ins(Opcode::Syscall), config).has_value());
    EXPECT_FALSE(
        dbt::templateKindFor(ins(Opcode::PltCall), config).has_value());
    EXPECT_FALSE(
        dbt::templateKindFor(ins(Opcode::FAdd), config).has_value());
    EXPECT_TRUE(
        dbt::templateKindFor(ins(Opcode::LockCmpxchg), config)
            .has_value());
    TemplateConfig templates;
    EXPECT_FALSE(dbt::planTemplateInstructions(
                     0x1000, {movri(1, 4), ins(Opcode::Syscall)}, config,
                     templates)
                     .has_value());
}

TEST(TemplatePlanner, DisabledKindDeclines)
{
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    templates.disable(TemplateKind::Load);
    EXPECT_FALSE(dbt::planTemplateInstructions(
                     0x1000, {loadIns(1, 2, 0)}, config, templates)
                     .has_value());
    templates = TemplateConfig{};
    EXPECT_TRUE(dbt::planTemplateInstructions(
                    0x1000, {loadIns(1, 2, 0)}, config, templates)
                    .has_value());
}

TEST(TemplatePlanner, ConstantFoldableSequenceDeclines)
{
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    // mov-imm feeding an imm-ALU op on the same register: the folder
    // would rewrite, so the planner must decline...
    Instruction addi = ins(Opcode::AddI);
    addi.rd = 1;
    addi.imm = 5;
    EXPECT_FALSE(dbt::planTemplateInstructions(
                     0x1000, {movri(1, 42), addi}, config, templates)
                     .has_value());
    // ...but the same pair on disjoint registers plans fine.
    addi.rd = 2;
    EXPECT_TRUE(dbt::planTemplateInstructions(
                    0x1000, {movri(1, 42), addi}, config, templates)
                    .has_value());
}

TEST(TemplatePlanner, RedundantStorePairDeclines)
{
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    // Same base + offset back to back: memory elimination would drop
    // the dead first store (WAW), so the planner declines.
    EXPECT_FALSE(dbt::planTemplateInstructions(
                     0x1000, {storeIns(2, 0, 1), storeIns(2, 0, 1)},
                     config, templates)
                     .has_value());
    EXPECT_TRUE(dbt::planTemplateInstructions(
                    0x1000, {storeIns(2, 0, 1), storeIns(2, 8, 1)},
                    config, templates)
                    .has_value());
}

TEST(TemplatePlanner, LoadThenStoreFenceMergeDeclines)
{
    // Under the Risotto scheme a load's trailing Frm meets the next
    // store's leading Fww and the fence merger would rewrite; under the
    // Qemu scheme the fences sit on the other side of the accesses and
    // the same guest pair plans fine.
    TemplateConfig templates;
    const std::vector<Instruction> pair = {loadIns(1, 2, 0),
                                           storeIns(3, 8, 4)};
    EXPECT_FALSE(dbt::planTemplateInstructions(
                     0x1000, pair, DbtConfig::risotto(), templates)
                     .has_value());
    EXPECT_TRUE(dbt::planTemplateInstructions(0x1000, pair,
                                              DbtConfig::qemu(),
                                              templates)
                    .has_value());
    // Store then load is legal in both: no adjacent fence pair forms.
    const std::vector<Instruction> reversed = {storeIns(3, 8, 4),
                                               loadIns(1, 2, 0)};
    EXPECT_TRUE(dbt::planTemplateInstructions(
                    0x1000, reversed, DbtConfig::risotto(), templates)
                    .has_value());
}

TEST(TemplatePlanner, MidBlockTerminatorDeclines)
{
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    Instruction jmp = ins(Opcode::Jmp);
    jmp.off = 16;
    EXPECT_FALSE(dbt::planTemplateInstructions(
                     0x1000, {jmp, ins(Opcode::Nop)}, config, templates)
                     .has_value());
    EXPECT_TRUE(dbt::planTemplateInstructions(
                    0x1000, {ins(Opcode::Nop), jmp}, config, templates)
                    .has_value());
}

TEST(TemplatePlanner, PlansStraightOffTheSegment)
{
    const GuestImage image = templateImage(10);
    const auto segment =
        gx86::DecodedSegment::build(image, gx86::FusionConfig{});
    const DbtConfig config = DbtConfig::risotto();
    TemplateConfig templates;
    const auto plan = dbt::planTemplateBlock(image.entry, *segment,
                                             config, templates);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->pc, image.entry);
    EXPECT_GT(plan->guestInstructions, 40u);
    EXPECT_GT(plan->irOpsPreOpt, plan->block.instrs.size());
    EXPECT_GT(plan->deadOpsRemoved, 0u);
    // Outside text: decline, not fault.
    EXPECT_FALSE(dbt::planTemplateBlock(image.textBase - 4, *segment,
                                        config, templates)
                     .has_value());
}

// --- Corpus differential -----------------------------------------------------

TEST(TemplateDifferential, CorpusIsBitIdenticalOnAndOff)
{
    std::uint64_t template_declined = 0;
    for (const WorkloadSpec &base : workloads::fullSuite()) {
        WorkloadSpec spec = base;
        spec.iterations = 30;
        const GuestImage image = workloads::buildGuestWorkload(spec);

        DbtConfig on = DbtConfig::risotto();
        on.templateTier = true;
        DbtConfig off = DbtConfig::risotto();
        off.templateTier = false;

        Dbt engine_on(image, on);
        Dbt engine_off(image, off);
        EXPECT_TRUE(engine_on.templateActive()) << spec.name;
        EXPECT_FALSE(engine_off.templateActive()) << spec.name;
        const auto r_on = engine_on.run({ThreadSpec{}});
        const auto r_off = engine_off.run({ThreadSpec{}});

        ASSERT_TRUE(r_on.finished) << spec.name;
        EXPECT_EQ(r_on.outputs, r_off.outputs) << spec.name;
        EXPECT_EQ(r_on.exitCodes, r_off.exitCodes) << spec.name;
        EXPECT_EQ(r_on.makespan, r_off.makespan) << spec.name;
        EXPECT_EQ(r_on.totalCycles, r_off.totalCycles) << spec.name;
        EXPECT_EQ(r_on.fallbackBlocks, r_off.fallbackBlocks)
            << spec.name;

        // Identical IR by construction means identical optimizer,
        // verifier, and retire counters -- not merely identical guest
        // results.
        for (const char *prefix :
             {"verify.", "opt.", "machine."})
            EXPECT_EQ(prefixedStats(r_on.stats, prefix),
                      prefixedStats(r_off.stats, prefix))
                << spec.name << " " << prefix;
        expectTranslationParity(r_on.stats, r_off.stats, spec.name);
        template_declined += r_on.stats.get("dbt.template_declined");
    }
    // Every workload body loads before it stores, so under the Risotto
    // scheme the fence merger has a real rewrite to do and the planner
    // must decline every block to tier 1 (coverage is exercised by the
    // litmus corpus below and the dedicated images): the sweep checks
    // the tier was consulted, not that it won.
    EXPECT_GT(template_declined, 0u);
}

TEST(TemplateDifferential, LitmusCorpusIsBitIdenticalOnAndOff)
{
    std::uint64_t template_blocks = 0;
    for (const litmus::LitmusTest &test : litmus::x86Corpus()) {
        const GuestImage image =
            workloads::litmusGuestImage(test.program);

        EmulatorOptions on;
        on.config = DbtConfig::risotto();
        on.config.templateTier = true;
        EmulatorOptions off;
        off.config = DbtConfig::risotto();
        off.config.templateTier = false;

        Emulator emulator_on(image, on);
        Emulator emulator_off(image, off);
        const auto r_on =
            emulator_on.run(test.program.threads.size());
        const auto r_off =
            emulator_off.run(test.program.threads.size());

        EXPECT_EQ(r_on.outputs, r_off.outputs) << test.program.name;
        EXPECT_EQ(r_on.exitCodes, r_off.exitCodes)
            << test.program.name;
        EXPECT_EQ(r_on.makespan, r_off.makespan) << test.program.name;
        for (const char *prefix :
             {"verify.", "opt.", "machine."})
            EXPECT_EQ(prefixedStats(r_on.stats, prefix),
                      prefixedStats(r_off.stats, prefix))
                << test.program.name << " " << prefix;
        template_blocks += r_on.stats.get("dbt.template_blocks");
    }
    // Litmus threads store before they load, which is exactly the
    // shape the templates cover: the corpus must exercise the tier.
    EXPECT_GT(template_blocks, 0u);
}

TEST(TemplateDifferential, FaultScheduleIsIdenticalOnAndOff)
{
    // The template tier plans before any injection draw and then
    // mirrors the baseline attempt loop draw for draw, so an armed
    // fault plan must produce the exact same schedule -- injected and
    // recovered counts included -- with the tier on and off.
    for (const WorkloadSpec &base : workloads::fullSuite()) {
        WorkloadSpec spec = base;
        spec.iterations = 10;
        const GuestImage image = workloads::buildGuestWorkload(spec);

        DbtConfig on = DbtConfig::risotto();
        on.templateTier = true;
        on.faults.seed = 0xfeed;
        on.faults.siteRates[faultsites::DbtDecode] = 0.2;
        on.faults.siteRates[faultsites::DbtEncode] = 0.2;
        on.faults.siteRates[faultsites::DbtBuffer] = 0.1;
        DbtConfig off = on;
        off.templateTier = false;

        Dbt engine_on(image, on);
        Dbt engine_off(image, off);
        const auto r_on = engine_on.run({ThreadSpec{}});
        const auto r_off = engine_off.run({ThreadSpec{}});

        ASSERT_TRUE(r_on.finished) << spec.name;
        EXPECT_EQ(r_on.outputs, r_off.outputs) << spec.name;
        EXPECT_EQ(r_on.exitCodes, r_off.exitCodes) << spec.name;
        EXPECT_EQ(r_on.makespan, r_off.makespan) << spec.name;
        EXPECT_EQ(r_on.fallbackBlocks, r_off.fallbackBlocks)
            << spec.name;
        for (const char *prefix :
             {"fault.", "verify.", "opt."})
            EXPECT_EQ(prefixedStats(r_on.stats, prefix),
                      prefixedStats(r_off.stats, prefix))
                << spec.name << " " << prefix;
        expectTranslationParity(r_on.stats, r_off.stats, spec.name);
    }
}

TEST(TemplateDifferential, TemplateImageCoversAndDeclines)
{
    const GuestImage image = templateImage(200);
    DbtConfig on = DbtConfig::risotto();
    on.templateTier = true;
    DbtConfig off = DbtConfig::risotto();
    off.templateTier = false;

    Dbt engine_on(image, on);
    Dbt engine_off(image, off);
    const auto r_on = engine_on.run({ThreadSpec{}});
    const auto r_off = engine_off.run({ThreadSpec{}});

    ASSERT_TRUE(r_on.finished);
    EXPECT_EQ(r_on.outputs, r_off.outputs);
    EXPECT_EQ(r_on.exitCodes, r_off.exitCodes);
    EXPECT_EQ(r_on.makespan, r_off.makespan);
    expectTranslationParity(r_on.stats, r_off.stats, "template-image");

    // The fat entry block and the loop body template-translate; the
    // syscall exit block declines to tier 1.
    EXPECT_GE(r_on.stats.get("dbt.template_blocks"), 2u);
    EXPECT_GE(r_on.stats.get("dbt.template_insns"), 40u);
    EXPECT_GE(r_on.stats.get("dbt.template_declined"), 1u);
    EXPECT_EQ(r_off.stats.get("dbt.template_blocks"), 0u);

    // The headline first-translation latency is exported either way.
    EXPECT_GT(r_on.stats.get("dbt.time_to_first_dispatch_ns"), 0u);
    EXPECT_GT(r_off.stats.get("dbt.time_to_first_dispatch_ns"), 0u);
}

// --- Self-disable conditions -------------------------------------------------

TEST(TemplateSelfDisable, NoDecodeCacheDisablesCleanly)
{
    // Regression: the planner reads the pre-decoded segment; with the
    // decode cache off the tier must stand down with a counter instead
    // of touching a null segment.
    const GuestImage image = templateImage(50);
    DbtConfig on = DbtConfig::risotto();
    on.templateTier = true;
    on.decodeCache = false;
    DbtConfig off = DbtConfig::risotto();
    off.templateTier = false;
    off.decodeCache = false;

    Dbt engine_on(image, on);
    EXPECT_FALSE(engine_on.templateActive());
    EXPECT_TRUE(engine_on.templateReports().empty());
    Dbt engine_off(image, off);
    const auto r_on = engine_on.run({ThreadSpec{}});
    const auto r_off = engine_off.run({ThreadSpec{}});

    ASSERT_TRUE(r_on.finished);
    EXPECT_EQ(r_on.stats.get("dbt.template_disabled_no_segment"), 1u);
    EXPECT_EQ(r_on.stats.get("dbt.template_blocks"), 0u);
    EXPECT_EQ(r_on.outputs, r_off.outputs);
    EXPECT_EQ(r_on.exitCodes, r_off.exitCodes);
    EXPECT_EQ(r_on.makespan, r_off.makespan);
}

TEST(TemplateSelfDisable, ValidateModeDisablesCleanly)
{
    // Per-TB validation wants every block on the tier-1 path; with
    // --validate the tier stands down and the run must still be
    // violation-free and bit-identical.
    const GuestImage image = templateImage(50);
    DbtConfig on = DbtConfig::risotto();
    on.templateTier = true;
    on.validateTranslations = true;
    DbtConfig off = DbtConfig::risotto();
    off.templateTier = false;
    off.validateTranslations = true;

    Dbt engine_on(image, on);
    EXPECT_FALSE(engine_on.templateActive());
    Dbt engine_off(image, off);
    const auto r_on = engine_on.run({ThreadSpec{}});
    const auto r_off = engine_off.run({ThreadSpec{}});

    ASSERT_TRUE(r_on.finished);
    EXPECT_EQ(r_on.stats.get("dbt.template_disabled_validate"), 1u);
    EXPECT_EQ(r_on.validationViolations, 0u);
    EXPECT_EQ(r_off.validationViolations, 0u);
    EXPECT_EQ(r_on.outputs, r_off.outputs);
    EXPECT_EQ(r_on.makespan, r_off.makespan);
    for (const char *prefix : {"verify.", "opt."})
        EXPECT_EQ(prefixedStats(r_on.stats, prefix),
                  prefixedStats(r_off.stats, prefix))
            << prefix;
}

// --- Weakened-template canary ------------------------------------------------

TEST(TemplateCanary, WeakenedFenceTemplateIsDisabledExactly)
{
    // Drop the DMB from the MFENCE template body: the store->MFENCE->
    // load pair probe must fail the obligation check, the engine must
    // disable exactly that kind, and the run must complete through the
    // tier-1 fallback with identical guest results.
    CanaryGuard guard;
    dbt::testWeakenTemplate(TemplateKind::Fence);

    const GuestImage image = fencedTemplateLoop(100);
    DbtConfig config = DbtConfig::risotto();
    config.templateTier = true;
    Dbt engine(image, config);

    EXPECT_TRUE(engine.templateActive());
    EXPECT_EQ(engine.stats().get("dbt.template_patterns_disabled"), 1u);
    std::size_t failing = 0;
    for (const auto &report : engine.templateReports()) {
        if (report.ok())
            continue;
        ++failing;
        EXPECT_EQ(report.kind,
                  static_cast<int>(TemplateKind::Fence));
        EXPECT_EQ(report.name, "fence");
    }
    EXPECT_EQ(failing, 1u);

    const auto r_canary = engine.run({ThreadSpec{}});
    ASSERT_TRUE(r_canary.finished);
    // The fenced loop body now declines to tier 1 -- but other kinds
    // still template (the mov-imm entry block).
    EXPECT_GT(r_canary.stats.get("dbt.template_declined"), 0u);

    dbt::testResetTemplates();
    DbtConfig off = DbtConfig::risotto();
    off.templateTier = false;
    Dbt reference(image, off);
    const auto r_ref = reference.run({ThreadSpec{}});
    EXPECT_EQ(r_canary.outputs, r_ref.outputs);
    EXPECT_EQ(r_canary.exitCodes, r_ref.exitCodes);
    EXPECT_EQ(r_canary.makespan, r_ref.makespan);
}

TEST(TemplateCanary, HealthyFenceTemplateCoversTheSameLoop)
{
    // Control for the canary: with the template table intact the same
    // fenced loop body is template-covered and every probe passes.
    const GuestImage image = fencedTemplateLoop(100);
    DbtConfig config = DbtConfig::risotto();
    config.templateTier = true;
    Dbt engine(image, config);
    EXPECT_EQ(engine.stats().get("dbt.template_patterns_disabled"), 0u);
    const auto result = engine.run({ThreadSpec{}});
    ASSERT_TRUE(result.finished);
    EXPECT_GE(result.stats.get("dbt.template_blocks"), 2u);
}

// --- Tier interactions -------------------------------------------------------

TEST(TemplateTierUp, HotTemplateBlocksStillPromote)
{
    const GuestImage image = splitTemplateLoop(400);
    DbtConfig on = DbtConfig::risotto();
    on.templateTier = true;
    DbtConfig off = DbtConfig::risotto();
    off.templateTier = false;

    Dbt engine_on(image, on);
    Dbt engine_off(image, off);
    const auto r_on = engine_on.run({ThreadSpec{}});
    const auto r_off = engine_off.run({ThreadSpec{}});

    ASSERT_TRUE(r_on.finished);
    EXPECT_EQ(r_on.outputs, r_off.outputs);
    EXPECT_EQ(r_on.makespan, r_off.makespan);
    // The split loop body template-translated cold, got hot, and the
    // tier-2 pipeline picked it up exactly as it would a baseline
    // block.
    EXPECT_GE(r_on.stats.get("dbt.template_blocks"), 2u);
    EXPECT_EQ(r_on.tier2Superblocks, r_off.tier2Superblocks);
    EXPECT_GE(r_on.tier2Superblocks, 1u);
}

TEST(TemplateTierUp, SnapshotRoundTripsTemplateTier)
{
    const GuestImage image = templateImage(100);
    DbtConfig config = DbtConfig::risotto();
    config.templateTier = true;
    Dbt producer(image, config);
    const auto first = producer.run({ThreadSpec{}});
    ASSERT_TRUE(first.finished);
    ASSERT_GE(first.stats.get("dbt.template_blocks"), 1u);

    const persist::Snapshot snapshot = producer.exportSnapshot();
    Dbt consumer(image, config);
    const dbt::PersistReport loaded =
        consumer.importSnapshot(snapshot, true);
    EXPECT_TRUE(loaded.applied);
    EXPECT_GT(loaded.loaded, 0u);
    EXPECT_EQ(loaded.rejected, 0u);
    const auto warm = consumer.run({ThreadSpec{}});
    ASSERT_TRUE(warm.finished);
    EXPECT_EQ(warm.outputs, first.outputs);
    EXPECT_EQ(warm.exitCodes, first.exitCodes);
}

} // namespace
