/**
 * @file
 * Whole-image static analyzer and translation-certificate tests: the
 * classification lattice, the Rsp-escape demotion, decode-cache /
 * legacy-decode parity (the analyzer and the reachability sweep must
 * see the same program both ways), fence-elision output equality,
 * certificate round-trips and keying, tampered-certificate canaries
 * (a damaged certificate degrades to full validation, never to wrong
 * code), forged-claim audits, the .rtbc v2 embedded-certificate frame,
 * and a paranoid zero-disagreement sweep over the litmus x86 corpus.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "dbt/certify.hh"
#include "dbt/dbt.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "litmus/library.hh"
#include "persist/fingerprint.hh"
#include "persist/snapshot.hh"
#include "risotto/risotto.hh"
#include "support/checksum.hh"
#include "workloads/litmusimage.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace risotto;

/** A guest exercising all three lattice points: a stack-local leaf
 * (Local), shared-region traffic (Ordered) and an RMW/fence-dense
 * block (HotOrdering), called in sequence from main. */
gx86::GuestImage
latticeImage()
{
    gx86::Assembler a;
    const gx86::Addr shared = a.dataReserve(256);
    a.defineSymbol("main");
    const auto start = a.newLabel();
    a.jmp(start);

    // Local: only stack-relative traffic through an unescaped Rsp.
    const auto local_fn = a.newLabel();
    a.bind(local_fn);
    a.subi(15, 32);
    a.store(15, 0, 1);
    a.addi(1, 7);
    a.load(2, 15, 0);
    a.add(1, 2);
    a.addi(15, 32);
    a.ret();

    // Ordered: shared loads/stores under the standard mapping.
    const auto shared_fn = a.newLabel();
    a.bind(shared_fn);
    a.movri(5, static_cast<std::int64_t>(shared));
    a.load(2, 5, 0);
    a.add(1, 2);
    a.store(5, 8, 1);
    a.ret();

    // HotOrdering: a dense run of ordering points.
    const auto hot_fn = a.newLabel();
    a.bind(hot_fn);
    a.movri(5, static_cast<std::int64_t>(shared));
    a.movri(9, 1);
    a.lockXadd(5, 16, 9);
    a.mfence();
    a.movri(9, 1);
    a.lockXadd(5, 24, 9);
    a.mfence();
    a.ret();

    a.bind(start);
    a.movri(1, 1);
    a.call(local_fn);
    a.call(shared_fn);
    a.call(hot_fn);
    a.andi(1, 0xff);
    a.movri(0, 0);
    a.syscall();
    return a.finish("main");
}

/** Same shape, but the stack pointer escapes into arithmetic. */
gx86::GuestImage
escapeImage()
{
    gx86::Assembler a;
    a.defineSymbol("main");
    a.subi(15, 16);
    a.store(15, 0, 1);
    a.movrr(3, 15); // Rsp escapes: locality premise is off.
    a.load(2, 15, 0);
    a.addi(15, 16);
    a.movri(1, 0);
    a.movri(0, 0);
    a.syscall();
    return a.finish("main");
}

analysis::ImageAnalysis
analyzeWith(const gx86::GuestImage &image, bool decode_cache)
{
    if (!decode_cache)
        return analysis::analyzeImage(image, nullptr);
    const auto segment = gx86::DecodedSegment::build(image, {});
    return analysis::analyzeImage(image, segment.get());
}

TEST(Analyzer, LatticeClassification)
{
    const gx86::GuestImage image = latticeImage();
    const analysis::ImageAnalysis ia = analyzeWith(image, true);
    EXPECT_TRUE(ia.rspPrivate);
    EXPECT_GT(ia.blocksLocal, 0u);
    EXPECT_GT(ia.blocksOrdered, 0u);
    EXPECT_GT(ia.blocksHot, 0u);
    EXPECT_GT(ia.fencesElidable, 0u);
    bool hot_finding = false;
    for (const analysis::Finding &f : ia.findings)
        hot_finding |= f.kind == analysis::Finding::Kind::HotRegion;
    EXPECT_TRUE(hot_finding);
}

TEST(Analyzer, RspEscapeDemotesWholeImage)
{
    const analysis::ImageAnalysis ia = analyzeWith(escapeImage(), true);
    EXPECT_FALSE(ia.rspPrivate);
    EXPECT_EQ(ia.blocksLocal, 0u);
    EXPECT_EQ(ia.fencesElidable, 0u);
    bool escape_finding = false;
    for (const analysis::Finding &f : ia.findings)
        escape_finding |= f.kind == analysis::Finding::Kind::RspEscape;
    EXPECT_TRUE(escape_finding);
}

/** The satellite regression: the pre-decoded segment and the legacy
 * GuestImage::decodeAt path must agree on the whole analysis -- same
 * reachable block heads, same classes, same premise. */
TEST(Analyzer, DecodeCacheParity)
{
    const gx86::GuestImage image = latticeImage();
    const analysis::ImageAnalysis cached = analyzeWith(image, true);
    const analysis::ImageAnalysis legacy = analyzeWith(image, false);
    EXPECT_EQ(cached.rspPrivate, legacy.rspPrivate);
    ASSERT_EQ(cached.blocks.size(), legacy.blocks.size());
    for (const auto &[pc, summary] : cached.blocks) {
        const auto it = legacy.blocks.find(pc);
        ASSERT_NE(it, legacy.blocks.end()) << "block only in cached";
        EXPECT_EQ(summary.cls, it->second.cls) << "class differs @" << pc;
        EXPECT_EQ(summary.successors, it->second.successors);
    }
}

/** And the same parity for the reachability sweep risotto-run
 * --validate walks (with and without --no-decode-cache). */
TEST(Analyzer, ReachableBlocksParity)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    const auto segment = gx86::DecodedSegment::build(image, {});
    const std::vector<gx86::Addr> cached =
        dbt::reachableBlocks(image, config, segment.get());
    const std::vector<gx86::Addr> legacy =
        dbt::reachableBlocks(image, config, nullptr);
    EXPECT_EQ(cached, legacy);
}

TEST(Elision, OutputEqualAndValidated)
{
    const workloads::WorkloadSpec spec =
        workloads::fullSuite().front();
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

    EmulatorOptions plain;
    plain.config = dbt::DbtConfig::risotto();
    Emulator base(image, plain);
    const dbt::RunResult want = base.run(2);

    EmulatorOptions elide;
    elide.config = dbt::DbtConfig::risotto();
    elide.config.analysis = true;
    elide.config.analysisElide = true;
    elide.config.validateTranslations = true;
    Emulator eliding(image, elide);
    const dbt::RunResult got = eliding.run(2);

    EXPECT_EQ(want.outputs, got.outputs);
    EXPECT_EQ(want.exitCodes, got.exitCodes);
    EXPECT_EQ(eliding.engine().violations().size(), 0u);
}

TEST(Certificate, RoundTripAndKeying)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    const analysis::ImageAnalysis ia = analyzeWith(image, true);

    dbt::CertifyReport report;
    const analysis::Certificate cert =
        dbt::certifyImage(image, config, ia, nullptr, report);
    EXPECT_EQ(report.blocksCertified, ia.blocks.size());
    EXPECT_GT(report.blocksValidated, 0u);
    EXPECT_EQ(report.blocksFailed, 0u);

    const std::vector<std::uint8_t> bytes =
        analysis::serializeCertificate(cert);
    analysis::Certificate back;
    ASSERT_TRUE(analysis::parseCertificate(bytes, back));
    EXPECT_EQ(back.entries.size(), cert.entries.size());
    EXPECT_EQ(back.validatedCount(), cert.validatedCount());
    EXPECT_TRUE(analysis::certificateMatches(
        back, persist::imageDigest(image),
        persist::configFingerprint(config)));
    EXPECT_FALSE(analysis::certificateMatches(
        back, persist::imageDigest(image),
        persist::configFingerprint(config) ^ 1));
}

/** Every single-bit corruption must be caught by the parser -- and a
 * rejected certificate means full validation, never a wrong claim. */
TEST(Certificate, TamperCanary)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    const analysis::ImageAnalysis ia = analyzeWith(image, true);
    dbt::CertifyReport report;
    const analysis::Certificate cert =
        dbt::certifyImage(image, config, ia, nullptr, report);
    const std::vector<std::uint8_t> bytes =
        analysis::serializeCertificate(cert);

    std::size_t rejected = 0;
    for (std::size_t bit = 0; bit < bytes.size() * 8; bit += 7) {
        std::vector<std::uint8_t> bad = bytes;
        bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        analysis::Certificate parsed;
        if (!analysis::parseCertificate(bad, parsed)) {
            ++rejected;
            continue;
        }
        // A flip the checksum cannot see structurally must still fail
        // the key check against the real image + config.
        EXPECT_FALSE(analysis::certificateMatches(
            parsed, persist::imageDigest(image),
            persist::configFingerprint(config)));
        ++rejected;
    }
    EXPECT_GT(rejected, 0u);
}

/** Engine-side rejection: a certificate for a different image or
 * config never installs. */
TEST(Certificate, EngineRejectsMismatchedKeys)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    config.analysisSkip = true;
    config.validateTranslations = true;
    const analysis::ImageAnalysis ia = analyzeWith(image, true);
    dbt::CertifyReport report;
    analysis::Certificate cert =
        dbt::certifyImage(image, config, ia, nullptr, report);
    cert.configFingerprint ^= 0x1234; // Wrong pipeline.

    dbt::Dbt engine(image, config);
    EXPECT_FALSE(engine.setCertificate(cert));
    EXPECT_EQ(engine.certificate(), nullptr);
    EXPECT_GT(engine.stats().get("analysis.cert_rejected"), 0u);
}

/** A forged claim (an address the pipeline cannot even translate)
 * must surface as an audit disagreement. */
TEST(Certificate, AuditDetectsForgedClaim)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    const analysis::ImageAnalysis ia = analyzeWith(image, true);
    dbt::CertifyReport report;
    analysis::Certificate cert =
        dbt::certifyImage(image, config, ia, nullptr, report);

    analysis::CertEntry forged;
    forged.pc = 0x7fff'0000; // Outside the guest text.
    forged.cls = analysis::BlockClass::Local;
    forged.flags = analysis::ClaimValidated;
    cert.entries.push_back(forged);

    const dbt::CertifyReport audit =
        dbt::auditCertificate(image, config, ia, nullptr, cert);
    EXPECT_GT(audit.blocksFailed, 0u);
}

/** Claim-driven skips actually happen, and the paranoid mode rechecks
 * every one of them without finding a disagreement. */
TEST(Certificate, SkipAndParanoidRecheck)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    config.analysisSkip = true;
    config.validateTranslations = true;
    const analysis::ImageAnalysis ia = analyzeWith(image, true);
    dbt::CertifyReport report;
    const analysis::Certificate cert =
        dbt::certifyImage(image, config, ia, nullptr, report);

    dbt::Dbt skipping(image, config);
    ASSERT_TRUE(skipping.setCertificate(cert));
    for (const auto &[pc, summary] : ia.blocks)
        skipping.lookupOrTranslate(pc);
    EXPECT_GT(skipping.stats().get("analysis.validations_skipped"), 0u);
    EXPECT_EQ(skipping.stats().get("analysis.paranoid_disagreements"),
              0u);

    dbt::DbtConfig paranoid = config;
    paranoid.analysisParanoid = true;
    dbt::Dbt rechecking(image, paranoid);
    ASSERT_TRUE(rechecking.setCertificate(cert));
    for (const auto &[pc, summary] : ia.blocks)
        rechecking.lookupOrTranslate(pc);
    EXPECT_EQ(rechecking.stats().get("analysis.validations_skipped"),
              0u);
    EXPECT_GT(rechecking.stats().get("analysis.paranoid_rechecks"), 0u);
    EXPECT_EQ(rechecking.stats().get("analysis.paranoid_disagreements"),
              0u);
}

/** The certificate rides inside .rtbc v2 snapshots; a corrupted frame
 * drops the certificate (full validation) but never the records. */
TEST(Certificate, SnapshotEmbedAndCorruptFrame)
{
    const gx86::GuestImage image = latticeImage();
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    config.analysisSkip = true;
    config.validateTranslations = true;
    const analysis::ImageAnalysis ia = analyzeWith(image, true);
    dbt::CertifyReport report;
    const analysis::Certificate cert =
        dbt::certifyImage(image, config, ia, nullptr, report);

    const std::string path = "/tmp/test_analysis_cert.rtbc";
    {
        dbt::Dbt producer(image, config);
        ASSERT_TRUE(producer.setCertificate(cert));
        for (const auto &[pc, summary] : ia.blocks)
            producer.lookupOrTranslate(pc);
        ASSERT_TRUE(producer.savePersistentCache(path));
    }
    {
        dbt::Dbt consumer(image, config);
        const dbt::PersistReport loaded =
            consumer.loadPersistentCache(path, true);
        EXPECT_TRUE(loaded.applied);
        EXPECT_GT(loaded.loaded, 0u);
        EXPECT_GT(consumer.stats().get("analysis.cert_embedded"), 0u);
        EXPECT_GT(consumer.stats().get("analysis.validations_skipped"),
                  0u);
    }
    {
        // Flip one bit inside the certificate frame: records must
        // still load, with the certificate dropped and every record
        // fully validated.
        std::vector<std::uint8_t> bytes = support::readFileBytes(path);
        const std::vector<std::uint8_t> cert_bytes =
            analysis::serializeCertificate(cert);
        std::size_t at = 0;
        for (std::size_t i = 0; i + cert_bytes.size() <= bytes.size();
             ++i) {
            if (std::equal(cert_bytes.begin(), cert_bytes.end(),
                           bytes.begin() + static_cast<long>(i))) {
                at = i;
                break;
            }
        }
        ASSERT_GT(at, 0u) << "certificate frame not found in snapshot";
        bytes[at + cert_bytes.size() / 2] ^= 0x10;
        support::writeFileBytes(path, bytes);

        dbt::Dbt consumer(image, config);
        const dbt::PersistReport loaded =
            consumer.loadPersistentCache(path, true);
        EXPECT_TRUE(loaded.applied);
        EXPECT_GT(loaded.loaded, 0u);
        EXPECT_EQ(consumer.stats().get("analysis.validations_skipped"),
                  0u);
        EXPECT_EQ(consumer.certificate(), nullptr);
    }
}

/** Corpus sweep: certify + paranoid audit of every litmus x86 test's
 * lowered image finds zero disagreements, and the lowered images run
 * (exit codes present for every thread). */
TEST(Corpus, LitmusParanoidSweep)
{
    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.analysis = true;
    config.analysisElide = true;
    for (const litmus::LitmusTest &test : litmus::x86Corpus()) {
        const gx86::GuestImage image =
            workloads::litmusGuestImage(test.program);
        const analysis::ImageAnalysis ia = analyzeWith(image, true);
        dbt::CertifyReport report;
        const analysis::Certificate cert =
            dbt::certifyImage(image, config, ia, nullptr, report);
        EXPECT_EQ(report.blocksFailed, 0u) << test.program.name;
        const dbt::CertifyReport audit =
            dbt::auditCertificate(image, config, ia, nullptr, cert);
        EXPECT_EQ(audit.blocksFailed, 0u) << test.program.name;

        EmulatorOptions options;
        options.config = config;
        Emulator emulator(image, options);
        const dbt::RunResult result =
            emulator.run(test.program.threads.size());
        EXPECT_EQ(result.exitCodes.size(),
                  test.program.threads.size())
            << test.program.name;
    }
}

} // namespace
