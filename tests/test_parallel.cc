/**
 * @file
 * The parallel analysis engine: ThreadPool semantics, and the
 * determinism contract of parallel enumeration and parallel
 * verification -- any job count must produce byte-identical results to
 * the serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "dbt/backend.hh"
#include "dbt/config.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "models/model.hh"
#include "support/error.hh"
#include "support/threadpool.hh"
#include "tcg/optimizer.hh"
#include "verify/verifier.hh"

using namespace risotto;

namespace
{

// ---------------------------------------------------------------- pool

TEST(ThreadPoolUnit, EveryTaskRunsExactlyOnce)
{
    support::ThreadPool pool(4);
    constexpr std::size_t N = 200;
    std::vector<std::atomic<int>> hits(N);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(N);
    for (std::size_t i = 0; i < N; ++i)
        tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
    pool.run(std::move(tasks));
    for (std::size_t i = 0; i < N; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolUnit, ParallelForCoversTheWholeRange)
{
    support::ThreadPool pool(3);
    constexpr std::size_t N = 1000;
    std::vector<std::atomic<int>> hits(N);
    pool.parallelFor(0, N, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < N; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolUnit, ParallelReduceIsDeterministic)
{
    // Subtraction is order-sensitive: if slots merged in any order other
    // than index order, repeated runs would disagree.
    support::ThreadPool pool(4);
    const auto run_once = [&] {
        return pool.parallelReduce(
            64, 1000.0, [](std::size_t i) { return double(i) * 1.5; },
            [](double acc, const double &x) { return acc - x; });
    };
    const double first = run_once();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(run_once(), first);
}

TEST(ThreadPoolUnit, ExceptionsPropagateToTheCaller)
{
    // One of the throwing tasks' exceptions reaches the caller with its
    // payload intact (the lowest-indexed *recorded* failure; tasks that
    // start after the first failure are skipped, so exactly which one is
    // schedule-dependent).
    support::ThreadPool pool(4);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i)
        tasks.push_back([i] {
            if (i % 3 == 1)
                throw std::runtime_error("task " + std::to_string(i));
        });
    try {
        pool.run(std::move(tasks));
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        int idx = -1;
        ASSERT_EQ(std::sscanf(e.what(), "task %d", &idx), 1);
        EXPECT_EQ(idx % 3, 1);
    }

    // And the pool stays usable after a failed batch.
    std::atomic<int> sum{0};
    pool.parallelFor(0, 10, 1,
                     [&](std::size_t i) { sum.fetch_add(int(i)); });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolUnit, SingleJobRunsInline)
{
    support::ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<int> order;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i)
        tasks.push_back([&order, i] { order.push_back(i); });
    pool.run(std::move(tasks));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolUnit, ReusableAcrossBatches)
{
    support::ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(0, 50, 1, [&](std::size_t i) {
            sum.fetch_add(static_cast<int>(i));
        });
        EXPECT_EQ(sum.load(), 49 * 50 / 2);
    }
}

// -------------------------------------------- enumeration determinism

TEST(ParallelEnumeration, CorpusMatchesSerialExactly)
{
    const models::X86Model x86;
    const models::ArmModel arm(models::ArmModel::AmoRule::Corrected);
    support::ThreadPool pool(8);
    for (const litmus::LitmusTest &test : litmus::x86Corpus()) {
        for (const models::ConsistencyModel *model :
             {static_cast<const models::ConsistencyModel *>(&x86),
              static_cast<const models::ConsistencyModel *>(&arm)}) {
            litmus::EnumerateStats serial_stats;
            const litmus::BehaviorSet serial = litmus::enumerateBehaviors(
                test.program, *model, &serial_stats);

            litmus::EnumerateOptions opts;
            opts.pool = &pool;
            litmus::EnumerateStats par_stats;
            const litmus::BehaviorSet par = litmus::enumerateBehaviors(
                test.program, *model, &par_stats, opts);

            EXPECT_EQ(par, serial)
                << test.program.name << " under " << model->name();
            EXPECT_EQ(par_stats.candidates, serial_stats.candidates)
                << test.program.name;
            EXPECT_EQ(par_stats.wellFormed, serial_stats.wellFormed)
                << test.program.name;
            EXPECT_EQ(par_stats.consistent, serial_stats.consistent)
                << test.program.name;
        }
    }
}

TEST(ParallelEnumeration, MaxCandidatesAbortsInBothModes)
{
    const litmus::LitmusTest test = litmus::sbq();
    const models::X86Model model;

    litmus::EnumerateOptions tight;
    tight.maxCandidates = 3;
    EXPECT_THROW(
        litmus::enumerateBehaviors(test.program, model, nullptr, tight),
        FatalError);

    support::ThreadPool pool(4);
    tight.pool = &pool;
    EXPECT_THROW(
        litmus::enumerateBehaviors(test.program, model, nullptr, tight),
        FatalError);
}

TEST(ParallelEnumeration, ZeroJobsMeansHardwareConcurrency)
{
    // jobs=0 resolves to at least one worker and still matches serial.
    const litmus::LitmusTest test = litmus::mp();
    const models::X86Model model;
    const litmus::BehaviorSet serial =
        litmus::enumerateBehaviors(test.program, model);
    litmus::EnumerateOptions opts;
    opts.jobs = 0;
    EXPECT_EQ(litmus::enumerateBehaviors(test.program, model, nullptr,
                                         opts),
              serial);
}

// ------------------------------------------- verification determinism

/** Slot allocator for compiling outside an engine: numbers exits. */
struct DummySlots : dbt::ExitSlotAllocator
{
    std::uint32_t next = 1;
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t, aarch::CodeAddr,
                             bool) override
    {
        return next++;
    }
    std::uint32_t dynamicSlot() override { return 0; }
};

gx86::GuestImage
randomBlock(std::mt19937_64 &rng)
{
    gx86::Assembler a;
    auto pick = [&](int n) { return static_cast<int>(rng() % n); };
    auto reg = [&]() { return static_cast<gx86::Reg>(4 + pick(4)); };
    auto base = [&]() { return static_cast<gx86::Reg>(pick(3)); };
    a.defineSymbol("main");
    const int count = 4 + pick(10);
    for (int i = 0; i < count; ++i) {
        switch (pick(6)) {
          case 0:
            a.load(reg(), base(), 8 * pick(8));
            break;
          case 1:
            a.store(base(), 8 * pick(8), reg());
            break;
          case 2:
            a.lockXadd(base(), 8 * pick(4), reg());
            break;
          case 3:
            a.mfence();
            break;
          case 4:
            a.movri(base(), 0x1000 + 8 * pick(16));
            break;
          default:
            a.add(reg(), reg());
            break;
        }
    }
    a.hlt();
    return a.finish("main");
}

/** Pairs checked over a small fuzz grid, with the given worker count. */
std::uint64_t
sweepPairs(std::size_t jobs)
{
    std::mt19937_64 rng(42);
    std::vector<gx86::GuestImage> images;
    for (int b = 0; b < 24; ++b)
        images.push_back(randomBlock(rng));

    const dbt::DbtConfig config = dbt::DbtConfig::risotto();
    support::ThreadPool pool(jobs);
    std::vector<std::uint64_t> pairs(images.size(), 0);
    std::vector<std::uint64_t> violations(images.size(), 0);
    pool.parallelFor(0, images.size(), 1, [&](std::size_t b) {
        dbt::Frontend frontend(images[b], config, nullptr);
        const auto guest = frontend.decodeBlock(images[b].entry);
        tcg::Block block = frontend.translate(images[b].entry);
        tcg::optimize(block, config.optimizer);
        aarch::CodeBuffer buffer;
        DummySlots slots;
        dbt::Backend backend(buffer, config);
        const aarch::CodeAddr entry = backend.compile(block, slots);
        const auto host = verify::decodeRange(buffer, entry, buffer.end());
        const verify::TbValidator validator({config.rmw});
        const auto report = validator.validate(guest, block, host,
                                               images[b].entry, false);
        pairs[b] = report.pairsChecked;
        violations[b] = report.violations.size();
    });
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < images.size(); ++b) {
        total += pairs[b];
        EXPECT_EQ(violations[b], 0u) << "block " << b;
    }
    return total;
}

TEST(ParallelVerify, PairCountsMatchSerial)
{
    const std::uint64_t serial = sweepPairs(1);
    EXPECT_GT(serial, 0u);
    EXPECT_EQ(sweepPairs(8), serial);
}

} // namespace
