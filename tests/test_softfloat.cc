/**
 * @file
 * Soft-float correctness: special values plus a large differential sweep
 * against the host FPU over normal-range operands (the soft
 * implementation must be bit-exact there; subnormal results flush).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "dbt/softfloat.hh"
#include "support/rng.hh"

namespace
{

using namespace risotto;
using namespace risotto::dbt::softfloat;

std::uint64_t
bitsOf(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

double
doubleOf(std::uint64_t b)
{
    double d;
    std::memcpy(&d, &b, sizeof(d));
    return d;
}

TEST(SoftFloat, SimpleValues)
{
    EXPECT_EQ(doubleOf(add64(bitsOf(1.5), bitsOf(2.25)).bits), 3.75);
    EXPECT_EQ(doubleOf(sub64(bitsOf(1.5), bitsOf(2.25)).bits), -0.75);
    EXPECT_EQ(doubleOf(mul64(bitsOf(3.0), bitsOf(7.0)).bits), 21.0);
    EXPECT_EQ(doubleOf(div64(bitsOf(1.0), bitsOf(4.0)).bits), 0.25);
    EXPECT_EQ(doubleOf(sqrt64(bitsOf(9.0)).bits), 3.0);
}

TEST(SoftFloat, SpecialValues)
{
    const std::uint64_t inf = bitsOf(INFINITY);
    const std::uint64_t ninf = bitsOf(-INFINITY);
    const std::uint64_t nan = bitsOf(NAN);
    const std::uint64_t one = bitsOf(1.0);
    const std::uint64_t zero = bitsOf(0.0);

    EXPECT_TRUE(std::isnan(doubleOf(add64(inf, ninf).bits)));
    EXPECT_TRUE(std::isinf(doubleOf(add64(inf, one).bits)));
    EXPECT_TRUE(std::isnan(doubleOf(add64(nan, one).bits)));
    EXPECT_TRUE(std::isnan(doubleOf(mul64(inf, zero).bits)));
    EXPECT_TRUE(std::isinf(doubleOf(div64(one, zero).bits)));
    EXPECT_TRUE(std::isnan(doubleOf(div64(zero, zero).bits)));
    EXPECT_EQ(doubleOf(mul64(zero, one).bits), 0.0);
    // Signed zero of a negative product.
    EXPECT_EQ(mul64(bitsOf(-1.0), zero).bits, bitsOf(-0.0));
}

TEST(SoftFloat, CancellationAndAlignment)
{
    EXPECT_EQ(doubleOf(sub64(bitsOf(1.0), bitsOf(1.0)).bits), 0.0);
    // Large exponent gap: small operand becomes pure sticky.
    const double big = 1e300;
    const double tiny = 1e-300;
    EXPECT_EQ(doubleOf(add64(bitsOf(big), bitsOf(tiny)).bits), big + tiny);
    // Near-total cancellation.
    const double a = 1.0000000000000002; // 1 + 1ulp
    EXPECT_EQ(doubleOf(sub64(bitsOf(a), bitsOf(1.0)).bits), a - 1.0);
}

TEST(SoftFloat, ConversionRoundTrip)
{
    EXPECT_EQ(doubleOf(fromInt64(42).bits), 42.0);
    EXPECT_EQ(toInt64(bitsOf(42.9)).bits, 42u);
    EXPECT_EQ(static_cast<std::int64_t>(toInt64(bitsOf(-3.7)).bits), -3);
}

/** Random double with exponent drawn away from subnormal territory. */
double
randomNormal(Rng &rng)
{
    const std::uint64_t frac = rng.next() & 0x000f'ffff'ffff'ffffULL;
    // Exponent in [300, 1700]: products/quotients stay normal.
    const std::uint64_t exp = 300 + rng.below(1400);
    const std::uint64_t sign = rng.chance(1, 2) ? (1ULL << 63) : 0;
    double d;
    const std::uint64_t bits = sign | (exp << 52) | frac;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

TEST(SoftFloatDifferential, BitExactAgainstHardware)
{
    Rng rng(2024);
    for (int n = 0; n < 20000; ++n) {
        const double a = randomNormal(rng);
        const double b = randomNormal(rng);
        const std::uint64_t ab = bitsOf(a);
        const std::uint64_t bb = bitsOf(b);

        const double hw_add = a + b;
        if (std::fpclassify(hw_add) == FP_NORMAL ||
            hw_add == 0.0 || std::isinf(hw_add)) {
            EXPECT_EQ(add64(ab, bb).bits, bitsOf(hw_add))
                << "add " << a << " + " << b;
        }
        const double hw_sub = a - b;
        if (std::fpclassify(hw_sub) == FP_NORMAL ||
            hw_sub == 0.0 || std::isinf(hw_sub)) {
            EXPECT_EQ(sub64(ab, bb).bits, bitsOf(hw_sub))
                << "sub " << a << " - " << b;
        }
        const double hw_mul = a * b;
        if (std::fpclassify(hw_mul) == FP_NORMAL || std::isinf(hw_mul)) {
            EXPECT_EQ(mul64(ab, bb).bits, bitsOf(hw_mul))
                << "mul " << a << " * " << b;
        }
        const double hw_div = a / b;
        if (std::fpclassify(hw_div) == FP_NORMAL || std::isinf(hw_div)) {
            EXPECT_EQ(div64(ab, bb).bits, bitsOf(hw_div))
                << "div " << a << " / " << b;
        }
    }
}

TEST(SoftFloat, CostsReflectSoftwareEmulation)
{
    // The cost model must make software FP much slower than the native
    // units (Section 7.3's floating-point emulation discussion).
    EXPECT_GE(add64(bitsOf(1.0), bitsOf(2.0)).cycles, 40u);
    EXPECT_GE(div64(bitsOf(1.0), bitsOf(2.0)).cycles, 100u);
    EXPECT_GE(sqrt64(bitsOf(2.0)).cycles, 150u);
}

} // namespace
