/**
 * @file
 * Reproduction of the paper's Section 3 findings:
 *  - the QEMU translation errors (MPQ, SBQ) under both RMW lowerings,
 *  - the FMR read-after-write transformation error,
 *  - the SBAL error in the original Arm-Cats model and the fix,
 *  - the correctness of the Risotto mappings on the same tests.
 */

#include <gtest/gtest.h>

#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "mapping/transforms.hh"
#include "models/model.hh"

namespace
{

using namespace risotto;
using namespace risotto::litmus;
using namespace risotto::mapping;

const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArmFixed(models::ArmModel::AmoRule::Corrected);
const models::ArmModel kArmOrig(models::ArmModel::AmoRule::Original);

bool
allowed(const Program &p, const models::ConsistencyModel &m,
        const Condition &cond)
{
    return cond.existsIn(enumerateBehaviors(p, m));
}

TEST(PaperSection32, MpqForbiddenInX86)
{
    const LitmusTest t = mpq();
    EXPECT_FALSE(allowed(t.program, kX86, t.interesting));
}

TEST(PaperSection32, MpqAllowedUnderQemuMappingWithRmw1AL)
{
    // QEMU + casal helper (GCC 10): the acquire read of the RMW may be
    // speculated before the plain read of Y => translation error.
    const LitmusTest t = mpq();
    const Program arm = mapX86ToArm(t.program, X86ToTcgScheme::Qemu,
                                    TcgToArmScheme::Qemu,
                                    RmwLowering::HelperRmw1AL);
    EXPECT_TRUE(allowed(arm, kArmFixed, t.interesting))
        << arm.toString();
    // The error exists under both Arm model variants.
    EXPECT_TRUE(allowed(arm, kArmOrig, t.interesting));
}

TEST(PaperSection32, MpqFixedByRisottoMapping)
{
    const LitmusTest t = mpq();
    const Program arm = mapX86ToArm(t.program, X86ToTcgScheme::Risotto,
                                    TcgToArmScheme::Risotto,
                                    RmwLowering::InlineCasal);
    EXPECT_FALSE(allowed(arm, kArmFixed, t.interesting))
        << arm.toString();
    const Program arm2 = mapX86ToArm(t.program, X86ToTcgScheme::Risotto,
                                     TcgToArmScheme::Risotto,
                                     RmwLowering::FencedRmw2);
    EXPECT_FALSE(allowed(arm2, kArmFixed, t.interesting));
}

TEST(PaperSection32, SbqForbiddenInX86)
{
    const LitmusTest t = sbq();
    EXPECT_FALSE(allowed(t.program, kX86, t.interesting));
}

TEST(PaperSection32, SbqAllowedUnderQemuMappingWithRmw2AL)
{
    // QEMU + ldaxr/stlxr helper (GCC 9): neither RMW2-AL nor DMBLD order
    // the store-load pairs => translation error.
    const LitmusTest t = sbq();
    const Program arm = mapX86ToArm(t.program, X86ToTcgScheme::Qemu,
                                    TcgToArmScheme::Qemu,
                                    RmwLowering::HelperRmw2AL);
    EXPECT_TRUE(allowed(arm, kArmFixed, t.interesting))
        << arm.toString();
}

TEST(PaperSection32, SbqFixedByRisottoMapping)
{
    const LitmusTest t = sbq();
    const Program arm = mapX86ToArm(t.program, X86ToTcgScheme::Risotto,
                                    TcgToArmScheme::Risotto,
                                    RmwLowering::InlineCasal);
    EXPECT_FALSE(allowed(arm, kArmFixed, t.interesting));
    const Program arm2 = mapX86ToArm(t.program, X86ToTcgScheme::Risotto,
                                     TcgToArmScheme::Risotto,
                                     RmwLowering::FencedRmw2);
    EXPECT_FALSE(allowed(arm2, kArmFixed, t.interesting));
}

TEST(PaperSection32, FmrRawTransformationIntroducesBehavior)
{
    // The source forbids a=2 /\ c=3; the RAW-transformed program allows
    // it: the transformation is incorrect in the presence of Fmr.
    const LitmusTest src = fmrSource();
    const LitmusTest tgt = fmrTransformed();
    EXPECT_FALSE(allowed(src.program, kTcg, src.interesting));
    Condition c_is_3;
    c_is_3.reg(1, 1, 3);
    EXPECT_FALSE(allowed(src.program, kTcg, c_is_3));
    EXPECT_TRUE(allowed(tgt.program, kTcg, c_is_3));
    // Refinement formally fails.
    const auto result =
        checkRefinement(src.program, kTcg, tgt.program, kTcg);
    EXPECT_FALSE(result.correct);
}

TEST(PaperSection32, UnsoundRawSiteFoundAndReproduced)
{
    // The unsound RAW matcher finds the W(Y)=2; a=Y site in FMR and its
    // application reproduces the hand-written transformed program's
    // behaviour.
    const LitmusTest src = fmrSource();
    const auto sites = findUnsoundRawAcrossAnyFence(src.program);
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].tid, 0u);
    const Program transformed = applyTransform(src.program, sites[0]);
    const auto result =
        checkRefinement(src.program, kTcg, transformed, kTcg);
    EXPECT_FALSE(result.correct);
    // The sound matcher refuses the site (program contains Fmr).
    for (const auto &site : findTransformSites(src.program))
        EXPECT_NE(site.kind, TransformKind::Raw);
}

TEST(PaperSection33, SbalForbiddenInX86)
{
    const LitmusTest t = sbal();
    EXPECT_FALSE(allowed(t.program, kX86, t.interesting));
}

TEST(PaperSection33, SbalAllowedUnderOriginalArmCats)
{
    // The "desired" Fig. 3 mapping is erroneous under the original model:
    // casal does not act as a full barrier.
    const LitmusTest t = sbal();
    const Program arm = mapX86ToArmDesired(t.program);
    EXPECT_TRUE(allowed(arm, kArmOrig, t.interesting)) << arm.toString();
}

TEST(PaperSection33, SbalForbiddenUnderCorrectedArmCats)
{
    // The strengthening the paper proposed (accepted upstream) makes the
    // mapping correct.
    const LitmusTest t = sbal();
    const Program arm = mapX86ToArmDesired(t.program);
    EXPECT_FALSE(allowed(arm, kArmFixed, t.interesting));
}

TEST(PaperSection33, DesiredMappingRefinesX86UnderCorrectedModelOnly)
{
    const LitmusTest t = sbal();
    const Program arm = mapX86ToArmDesired(t.program);
    EXPECT_FALSE(checkRefinement(t.program, kX86, arm, kArmOrig).correct);
    EXPECT_TRUE(checkRefinement(t.program, kX86, arm, kArmFixed).correct);
}

TEST(PaperFig9, TrailingDmbffNeededForRmw2StoreLoadOrder)
{
    // Fig. 9 right: with the full Fig. 7b lowering (DMBFF;RMW2;DMBFF) the
    // SB-with-RMWs outcome is forbidden; dropping the fences allows it.
    const LitmusTest t = fig9SB();
    const Program fenced = mapTcgToArm(t.program, TcgToArmScheme::Risotto,
                                       RmwLowering::FencedRmw2);
    EXPECT_FALSE(allowed(fenced, kArmFixed, t.interesting));

    // Plain RMW2 without the surrounding DMBFFs: weak outcome appears.
    Program bare = t.program;
    for (auto &th : bare.threads)
        for (auto &i : th.instrs)
            if (i.kind == Instr::Kind::Rmw) {
                i.rmwKind = memcore::RmwKind::LxSx;
                i.readAccess = memcore::Access::Plain;
                i.writeAccess = memcore::Access::Plain;
            }
    EXPECT_TRUE(allowed(bare, kArmFixed, t.interesting))
        << bare.toString();
    // And the IR source forbids it.
    EXPECT_FALSE(allowed(t.program, kTcg, t.interesting));
}

} // namespace
