# Empty compiler generated dependencies file for risotto-run.
# This may be replaced when dependencies are built.
