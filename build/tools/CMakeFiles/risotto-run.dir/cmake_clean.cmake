file(REMOVE_RECURSE
  "CMakeFiles/risotto-run.dir/risotto_run.cc.o"
  "CMakeFiles/risotto-run.dir/risotto_run.cc.o.d"
  "risotto-run"
  "risotto-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risotto-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
