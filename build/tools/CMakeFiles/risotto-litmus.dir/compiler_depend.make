# Empty compiler generated dependencies file for risotto-litmus.
# This may be replaced when dependencies are built.
