file(REMOVE_RECURSE
  "CMakeFiles/risotto-litmus.dir/risotto_litmus.cc.o"
  "CMakeFiles/risotto-litmus.dir/risotto_litmus.cc.o.d"
  "risotto-litmus"
  "risotto-litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risotto-litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
