file(REMOVE_RECURSE
  "CMakeFiles/fence_optimizer_demo.dir/fence_optimizer_demo.cc.o"
  "CMakeFiles/fence_optimizer_demo.dir/fence_optimizer_demo.cc.o.d"
  "fence_optimizer_demo"
  "fence_optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fence_optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
