# Empty compiler generated dependencies file for fence_optimizer_demo.
# This may be replaced when dependencies are built.
