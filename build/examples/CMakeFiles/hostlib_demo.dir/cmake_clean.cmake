file(REMOVE_RECURSE
  "CMakeFiles/hostlib_demo.dir/hostlib_demo.cc.o"
  "CMakeFiles/hostlib_demo.dir/hostlib_demo.cc.o.d"
  "hostlib_demo"
  "hostlib_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostlib_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
