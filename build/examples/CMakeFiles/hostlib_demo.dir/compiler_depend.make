# Empty compiler generated dependencies file for hostlib_demo.
# This may be replaced when dependencies are built.
