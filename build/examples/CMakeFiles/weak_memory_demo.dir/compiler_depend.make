# Empty compiler generated dependencies file for weak_memory_demo.
# This may be replaced when dependencies are built.
