file(REMOVE_RECURSE
  "CMakeFiles/weak_memory_demo.dir/weak_memory_demo.cc.o"
  "CMakeFiles/weak_memory_demo.dir/weak_memory_demo.cc.o.d"
  "weak_memory_demo"
  "weak_memory_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_memory_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
