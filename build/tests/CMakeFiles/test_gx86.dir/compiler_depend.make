# Empty compiler generated dependencies file for test_gx86.
# This may be replaced when dependencies are built.
