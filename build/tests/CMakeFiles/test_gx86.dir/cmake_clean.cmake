file(REMOVE_RECURSE
  "CMakeFiles/test_gx86.dir/test_gx86.cc.o"
  "CMakeFiles/test_gx86.dir/test_gx86.cc.o.d"
  "test_gx86"
  "test_gx86.pdb"
  "test_gx86[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gx86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
