file(REMOVE_RECURSE
  "CMakeFiles/test_parser_stress.dir/test_parser_stress.cc.o"
  "CMakeFiles/test_parser_stress.dir/test_parser_stress.cc.o.d"
  "test_parser_stress"
  "test_parser_stress.pdb"
  "test_parser_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
