# Empty compiler generated dependencies file for test_parser_stress.
# This may be replaced when dependencies are built.
