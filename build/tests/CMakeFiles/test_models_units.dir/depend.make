# Empty dependencies file for test_models_units.
# This may be replaced when dependencies are built.
