file(REMOVE_RECURSE
  "CMakeFiles/test_models_units.dir/test_models_units.cc.o"
  "CMakeFiles/test_models_units.dir/test_models_units.cc.o.d"
  "test_models_units"
  "test_models_units.pdb"
  "test_models_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
