file(REMOVE_RECURSE
  "CMakeFiles/test_imagefile.dir/test_imagefile.cc.o"
  "CMakeFiles/test_imagefile.dir/test_imagefile.cc.o.d"
  "test_imagefile"
  "test_imagefile.pdb"
  "test_imagefile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imagefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
