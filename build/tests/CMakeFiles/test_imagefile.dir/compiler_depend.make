# Empty compiler generated dependencies file for test_imagefile.
# This may be replaced when dependencies are built.
