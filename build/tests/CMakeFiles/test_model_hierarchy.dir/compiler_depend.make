# Empty compiler generated dependencies file for test_model_hierarchy.
# This may be replaced when dependencies are built.
