file(REMOVE_RECURSE
  "CMakeFiles/test_model_hierarchy.dir/test_model_hierarchy.cc.o"
  "CMakeFiles/test_model_hierarchy.dir/test_model_hierarchy.cc.o.d"
  "test_model_hierarchy"
  "test_model_hierarchy.pdb"
  "test_model_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
