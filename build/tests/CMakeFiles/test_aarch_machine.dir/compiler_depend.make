# Empty compiler generated dependencies file for test_aarch_machine.
# This may be replaced when dependencies are built.
