file(REMOVE_RECURSE
  "CMakeFiles/test_aarch_machine.dir/test_aarch_machine.cc.o"
  "CMakeFiles/test_aarch_machine.dir/test_aarch_machine.cc.o.d"
  "test_aarch_machine"
  "test_aarch_machine.pdb"
  "test_aarch_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aarch_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
