# Empty dependencies file for test_tcg.
# This may be replaced when dependencies are built.
