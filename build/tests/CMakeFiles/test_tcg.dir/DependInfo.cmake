
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tcg.cc" "tests/CMakeFiles/test_tcg.dir/test_tcg.cc.o" "gcc" "tests/CMakeFiles/test_tcg.dir/test_tcg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcg/CMakeFiles/tcg.dir/DependInfo.cmake"
  "/root/repo/build/src/gx86/CMakeFiles/gx86.dir/DependInfo.cmake"
  "/root/repo/build/src/memcore/CMakeFiles/memcore.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
