file(REMOVE_RECURSE
  "CMakeFiles/test_tcg.dir/test_tcg.cc.o"
  "CMakeFiles/test_tcg.dir/test_tcg.cc.o.d"
  "test_tcg"
  "test_tcg.pdb"
  "test_tcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
