file(REMOVE_RECURSE
  "CMakeFiles/test_linker.dir/test_linker.cc.o"
  "CMakeFiles/test_linker.dir/test_linker.cc.o.d"
  "test_linker"
  "test_linker.pdb"
  "test_linker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
