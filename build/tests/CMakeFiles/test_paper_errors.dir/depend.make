# Empty dependencies file for test_paper_errors.
# This may be replaced when dependencies are built.
