file(REMOVE_RECURSE
  "CMakeFiles/test_paper_errors.dir/test_paper_errors.cc.o"
  "CMakeFiles/test_paper_errors.dir/test_paper_errors.cc.o.d"
  "test_paper_errors"
  "test_paper_errors.pdb"
  "test_paper_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
