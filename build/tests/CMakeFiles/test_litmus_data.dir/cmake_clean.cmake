file(REMOVE_RECURSE
  "CMakeFiles/test_litmus_data.dir/test_litmus_data.cc.o"
  "CMakeFiles/test_litmus_data.dir/test_litmus_data.cc.o.d"
  "test_litmus_data"
  "test_litmus_data.pdb"
  "test_litmus_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litmus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
