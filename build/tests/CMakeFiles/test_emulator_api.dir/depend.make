# Empty dependencies file for test_emulator_api.
# This may be replaced when dependencies are built.
