file(REMOVE_RECURSE
  "CMakeFiles/test_emulator_api.dir/test_emulator_api.cc.o"
  "CMakeFiles/test_emulator_api.dir/test_emulator_api.cc.o.d"
  "test_emulator_api"
  "test_emulator_api.pdb"
  "test_emulator_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emulator_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
