file(REMOVE_RECURSE
  "CMakeFiles/test_mapping_units.dir/test_mapping_units.cc.o"
  "CMakeFiles/test_mapping_units.dir/test_mapping_units.cc.o.d"
  "test_mapping_units"
  "test_mapping_units.pdb"
  "test_mapping_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
