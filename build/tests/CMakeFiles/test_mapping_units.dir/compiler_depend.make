# Empty compiler generated dependencies file for test_mapping_units.
# This may be replaced when dependencies are built.
