file(REMOVE_RECURSE
  "CMakeFiles/test_litmus_models.dir/test_litmus_models.cc.o"
  "CMakeFiles/test_litmus_models.dir/test_litmus_models.cc.o.d"
  "test_litmus_models"
  "test_litmus_models.pdb"
  "test_litmus_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litmus_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
