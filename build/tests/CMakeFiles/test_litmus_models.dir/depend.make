# Empty dependencies file for test_litmus_models.
# This may be replaced when dependencies are built.
