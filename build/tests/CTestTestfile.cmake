# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_relation[1]_include.cmake")
include("/root/repo/build/tests/test_litmus_models[1]_include.cmake")
include("/root/repo/build/tests/test_paper_errors[1]_include.cmake")
include("/root/repo/build/tests/test_gx86[1]_include.cmake")
include("/root/repo/build/tests/test_tcg[1]_include.cmake")
include("/root/repo/build/tests/test_aarch_machine[1]_include.cmake")
include("/root/repo/build/tests/test_softfloat[1]_include.cmake")
include("/root/repo/build/tests/test_dbt[1]_include.cmake")
include("/root/repo/build/tests/test_linker[1]_include.cmake")
include("/root/repo/build/tests/test_parser_stress[1]_include.cmake")
include("/root/repo/build/tests/test_imagefile[1]_include.cmake")
include("/root/repo/build/tests/test_models_units[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_riscv[1]_include.cmake")
include("/root/repo/build/tests/test_mapping_units[1]_include.cmake")
include("/root/repo/build/tests/test_emulator_api[1]_include.cmake")
include("/root/repo/build/tests/test_litmus_data[1]_include.cmake")
include("/root/repo/build/tests/test_model_hierarchy[1]_include.cmake")
