file(REMOVE_RECURSE
  "CMakeFiles/fig15_cas.dir/fig15_cas.cc.o"
  "CMakeFiles/fig15_cas.dir/fig15_cas.cc.o.d"
  "fig15_cas"
  "fig15_cas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
