# Empty dependencies file for fig15_cas.
# This may be replaced when dependencies are built.
