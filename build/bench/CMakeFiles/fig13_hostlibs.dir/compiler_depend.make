# Empty compiler generated dependencies file for fig13_hostlibs.
# This may be replaced when dependencies are built.
