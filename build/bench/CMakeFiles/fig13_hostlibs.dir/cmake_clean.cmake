file(REMOVE_RECURSE
  "CMakeFiles/fig13_hostlibs.dir/fig13_hostlibs.cc.o"
  "CMakeFiles/fig13_hostlibs.dir/fig13_hostlibs.cc.o.d"
  "fig13_hostlibs"
  "fig13_hostlibs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hostlibs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
