file(REMOVE_RECURSE
  "CMakeFiles/tab_qemu_errors.dir/tab_qemu_errors.cc.o"
  "CMakeFiles/tab_qemu_errors.dir/tab_qemu_errors.cc.o.d"
  "tab_qemu_errors"
  "tab_qemu_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_qemu_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
