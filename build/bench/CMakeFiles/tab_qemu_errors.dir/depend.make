# Empty dependencies file for tab_qemu_errors.
# This may be replaced when dependencies are built.
