file(REMOVE_RECURSE
  "CMakeFiles/tab_riscv.dir/tab_riscv.cc.o"
  "CMakeFiles/tab_riscv.dir/tab_riscv.cc.o.d"
  "tab_riscv"
  "tab_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
