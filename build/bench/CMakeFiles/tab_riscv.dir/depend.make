# Empty dependencies file for tab_riscv.
# This may be replaced when dependencies are built.
