# Empty compiler generated dependencies file for tab_transforms.
# This may be replaced when dependencies are built.
