
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_transforms.cc" "bench/CMakeFiles/tab_transforms.dir/tab_transforms.cc.o" "gcc" "bench/CMakeFiles/tab_transforms.dir/tab_transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/risotto/CMakeFiles/risotto.dir/DependInfo.cmake"
  "/root/repo/build/src/hostlib/CMakeFiles/hostlib.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/linker.dir/DependInfo.cmake"
  "/root/repo/build/src/dbt/CMakeFiles/dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/tcg/CMakeFiles/tcg.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/models.dir/DependInfo.cmake"
  "/root/repo/build/src/memcore/CMakeFiles/memcore.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/aarch/CMakeFiles/aarch.dir/DependInfo.cmake"
  "/root/repo/build/src/gx86/CMakeFiles/gx86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
