file(REMOVE_RECURSE
  "CMakeFiles/tab_transforms.dir/tab_transforms.cc.o"
  "CMakeFiles/tab_transforms.dir/tab_transforms.cc.o.d"
  "tab_transforms"
  "tab_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
