file(REMOVE_RECURSE
  "CMakeFiles/micro_infra.dir/micro_infra.cc.o"
  "CMakeFiles/micro_infra.dir/micro_infra.cc.o.d"
  "micro_infra"
  "micro_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
