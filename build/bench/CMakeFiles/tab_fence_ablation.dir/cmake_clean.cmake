file(REMOVE_RECURSE
  "CMakeFiles/tab_fence_ablation.dir/tab_fence_ablation.cc.o"
  "CMakeFiles/tab_fence_ablation.dir/tab_fence_ablation.cc.o.d"
  "tab_fence_ablation"
  "tab_fence_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_fence_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
