# Empty compiler generated dependencies file for tab_armcats_fix.
# This may be replaced when dependencies are built.
