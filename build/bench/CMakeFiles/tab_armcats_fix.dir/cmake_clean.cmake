file(REMOVE_RECURSE
  "CMakeFiles/tab_armcats_fix.dir/tab_armcats_fix.cc.o"
  "CMakeFiles/tab_armcats_fix.dir/tab_armcats_fix.cc.o.d"
  "tab_armcats_fix"
  "tab_armcats_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_armcats_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
