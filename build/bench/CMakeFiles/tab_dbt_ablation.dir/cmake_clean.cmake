file(REMOVE_RECURSE
  "CMakeFiles/tab_dbt_ablation.dir/tab_dbt_ablation.cc.o"
  "CMakeFiles/tab_dbt_ablation.dir/tab_dbt_ablation.cc.o.d"
  "tab_dbt_ablation"
  "tab_dbt_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_dbt_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
