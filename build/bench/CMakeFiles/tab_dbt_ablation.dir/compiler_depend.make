# Empty compiler generated dependencies file for tab_dbt_ablation.
# This may be replaced when dependencies are built.
