file(REMOVE_RECURSE
  "CMakeFiles/tab_schemes.dir/tab_schemes.cc.o"
  "CMakeFiles/tab_schemes.dir/tab_schemes.cc.o.d"
  "tab_schemes"
  "tab_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
