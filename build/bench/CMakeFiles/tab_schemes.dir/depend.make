# Empty dependencies file for tab_schemes.
# This may be replaced when dependencies are built.
