file(REMOVE_RECURSE
  "CMakeFiles/tab_minimality.dir/tab_minimality.cc.o"
  "CMakeFiles/tab_minimality.dir/tab_minimality.cc.o.d"
  "tab_minimality"
  "tab_minimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_minimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
