# Empty compiler generated dependencies file for tab_minimality.
# This may be replaced when dependencies are built.
