# Empty compiler generated dependencies file for fig14_mathlib.
# This may be replaced when dependencies are built.
