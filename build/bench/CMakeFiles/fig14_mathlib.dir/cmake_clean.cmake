file(REMOVE_RECURSE
  "CMakeFiles/fig14_mathlib.dir/fig14_mathlib.cc.o"
  "CMakeFiles/fig14_mathlib.dir/fig14_mathlib.cc.o.d"
  "fig14_mathlib"
  "fig14_mathlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mathlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
