file(REMOVE_RECURSE
  "CMakeFiles/tab_mapping_verif.dir/tab_mapping_verif.cc.o"
  "CMakeFiles/tab_mapping_verif.dir/tab_mapping_verif.cc.o.d"
  "tab_mapping_verif"
  "tab_mapping_verif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_mapping_verif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
