# Empty dependencies file for tab_mapping_verif.
# This may be replaced when dependencies are built.
