file(REMOVE_RECURSE
  "CMakeFiles/fig12_benchsuites.dir/fig12_benchsuites.cc.o"
  "CMakeFiles/fig12_benchsuites.dir/fig12_benchsuites.cc.o.d"
  "fig12_benchsuites"
  "fig12_benchsuites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_benchsuites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
