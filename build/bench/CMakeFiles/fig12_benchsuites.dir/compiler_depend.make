# Empty compiler generated dependencies file for fig12_benchsuites.
# This may be replaced when dependencies are built.
