file(REMOVE_RECURSE
  "CMakeFiles/litmus.dir/check.cc.o"
  "CMakeFiles/litmus.dir/check.cc.o.d"
  "CMakeFiles/litmus.dir/enumerate.cc.o"
  "CMakeFiles/litmus.dir/enumerate.cc.o.d"
  "CMakeFiles/litmus.dir/library.cc.o"
  "CMakeFiles/litmus.dir/library.cc.o.d"
  "CMakeFiles/litmus.dir/outcome.cc.o"
  "CMakeFiles/litmus.dir/outcome.cc.o.d"
  "CMakeFiles/litmus.dir/parser.cc.o"
  "CMakeFiles/litmus.dir/parser.cc.o.d"
  "CMakeFiles/litmus.dir/program.cc.o"
  "CMakeFiles/litmus.dir/program.cc.o.d"
  "CMakeFiles/litmus.dir/random.cc.o"
  "CMakeFiles/litmus.dir/random.cc.o.d"
  "liblitmus.a"
  "liblitmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
