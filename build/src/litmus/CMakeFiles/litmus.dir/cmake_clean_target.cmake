file(REMOVE_RECURSE
  "liblitmus.a"
)
