# Empty compiler generated dependencies file for litmus.
# This may be replaced when dependencies are built.
