
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litmus/check.cc" "src/litmus/CMakeFiles/litmus.dir/check.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/check.cc.o.d"
  "/root/repo/src/litmus/enumerate.cc" "src/litmus/CMakeFiles/litmus.dir/enumerate.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/enumerate.cc.o.d"
  "/root/repo/src/litmus/library.cc" "src/litmus/CMakeFiles/litmus.dir/library.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/library.cc.o.d"
  "/root/repo/src/litmus/outcome.cc" "src/litmus/CMakeFiles/litmus.dir/outcome.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/outcome.cc.o.d"
  "/root/repo/src/litmus/parser.cc" "src/litmus/CMakeFiles/litmus.dir/parser.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/parser.cc.o.d"
  "/root/repo/src/litmus/program.cc" "src/litmus/CMakeFiles/litmus.dir/program.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/program.cc.o.d"
  "/root/repo/src/litmus/random.cc" "src/litmus/CMakeFiles/litmus.dir/random.cc.o" "gcc" "src/litmus/CMakeFiles/litmus.dir/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memcore/CMakeFiles/memcore.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/models.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
