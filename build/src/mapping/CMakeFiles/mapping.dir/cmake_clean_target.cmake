file(REMOVE_RECURSE
  "libmapping.a"
)
