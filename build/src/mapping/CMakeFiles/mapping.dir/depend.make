# Empty dependencies file for mapping.
# This may be replaced when dependencies are built.
