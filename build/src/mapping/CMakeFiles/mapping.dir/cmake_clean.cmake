file(REMOVE_RECURSE
  "CMakeFiles/mapping.dir/schemes.cc.o"
  "CMakeFiles/mapping.dir/schemes.cc.o.d"
  "CMakeFiles/mapping.dir/transforms.cc.o"
  "CMakeFiles/mapping.dir/transforms.cc.o.d"
  "libmapping.a"
  "libmapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
