file(REMOVE_RECURSE
  "CMakeFiles/dbt.dir/backend.cc.o"
  "CMakeFiles/dbt.dir/backend.cc.o.d"
  "CMakeFiles/dbt.dir/config.cc.o"
  "CMakeFiles/dbt.dir/config.cc.o.d"
  "CMakeFiles/dbt.dir/dbt.cc.o"
  "CMakeFiles/dbt.dir/dbt.cc.o.d"
  "CMakeFiles/dbt.dir/frontend.cc.o"
  "CMakeFiles/dbt.dir/frontend.cc.o.d"
  "CMakeFiles/dbt.dir/softfloat.cc.o"
  "CMakeFiles/dbt.dir/softfloat.cc.o.d"
  "libdbt.a"
  "libdbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
