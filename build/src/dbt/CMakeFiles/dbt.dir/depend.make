# Empty dependencies file for dbt.
# This may be replaced when dependencies are built.
