file(REMOVE_RECURSE
  "libdbt.a"
)
