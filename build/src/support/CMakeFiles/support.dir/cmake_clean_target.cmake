file(REMOVE_RECURSE
  "libsupport.a"
)
