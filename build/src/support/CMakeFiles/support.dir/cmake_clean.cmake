file(REMOVE_RECURSE
  "CMakeFiles/support.dir/format.cc.o"
  "CMakeFiles/support.dir/format.cc.o.d"
  "CMakeFiles/support.dir/stats.cc.o"
  "CMakeFiles/support.dir/stats.cc.o.d"
  "libsupport.a"
  "libsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
