file(REMOVE_RECURSE
  "CMakeFiles/workloads.dir/workloads.cc.o"
  "CMakeFiles/workloads.dir/workloads.cc.o.d"
  "libworkloads.a"
  "libworkloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
