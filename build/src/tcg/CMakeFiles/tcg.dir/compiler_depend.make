# Empty compiler generated dependencies file for tcg.
# This may be replaced when dependencies are built.
