file(REMOVE_RECURSE
  "CMakeFiles/tcg.dir/ir.cc.o"
  "CMakeFiles/tcg.dir/ir.cc.o.d"
  "CMakeFiles/tcg.dir/optimizer.cc.o"
  "CMakeFiles/tcg.dir/optimizer.cc.o.d"
  "libtcg.a"
  "libtcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
