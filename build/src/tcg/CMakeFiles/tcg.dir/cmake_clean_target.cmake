file(REMOVE_RECURSE
  "libtcg.a"
)
