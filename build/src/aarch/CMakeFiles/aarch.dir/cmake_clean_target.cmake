file(REMOVE_RECURSE
  "libaarch.a"
)
