# Empty compiler generated dependencies file for aarch.
# This may be replaced when dependencies are built.
