file(REMOVE_RECURSE
  "CMakeFiles/aarch.dir/emitter.cc.o"
  "CMakeFiles/aarch.dir/emitter.cc.o.d"
  "CMakeFiles/aarch.dir/isa.cc.o"
  "CMakeFiles/aarch.dir/isa.cc.o.d"
  "libaarch.a"
  "libaarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
