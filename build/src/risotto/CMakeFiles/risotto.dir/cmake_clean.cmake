file(REMOVE_RECURSE
  "CMakeFiles/risotto.dir/risotto.cc.o"
  "CMakeFiles/risotto.dir/risotto.cc.o.d"
  "CMakeFiles/risotto.dir/stress.cc.o"
  "CMakeFiles/risotto.dir/stress.cc.o.d"
  "librisotto.a"
  "librisotto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risotto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
