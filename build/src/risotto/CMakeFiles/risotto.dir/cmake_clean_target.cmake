file(REMOVE_RECURSE
  "librisotto.a"
)
