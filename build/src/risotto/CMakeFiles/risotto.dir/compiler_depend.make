# Empty compiler generated dependencies file for risotto.
# This may be replaced when dependencies are built.
