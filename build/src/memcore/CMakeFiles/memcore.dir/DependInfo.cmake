
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memcore/event.cc" "src/memcore/CMakeFiles/memcore.dir/event.cc.o" "gcc" "src/memcore/CMakeFiles/memcore.dir/event.cc.o.d"
  "/root/repo/src/memcore/execution.cc" "src/memcore/CMakeFiles/memcore.dir/execution.cc.o" "gcc" "src/memcore/CMakeFiles/memcore.dir/execution.cc.o.d"
  "/root/repo/src/memcore/fencealg.cc" "src/memcore/CMakeFiles/memcore.dir/fencealg.cc.o" "gcc" "src/memcore/CMakeFiles/memcore.dir/fencealg.cc.o.d"
  "/root/repo/src/memcore/relation.cc" "src/memcore/CMakeFiles/memcore.dir/relation.cc.o" "gcc" "src/memcore/CMakeFiles/memcore.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
