file(REMOVE_RECURSE
  "libmemcore.a"
)
