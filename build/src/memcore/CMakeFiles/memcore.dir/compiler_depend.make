# Empty compiler generated dependencies file for memcore.
# This may be replaced when dependencies are built.
