file(REMOVE_RECURSE
  "CMakeFiles/memcore.dir/event.cc.o"
  "CMakeFiles/memcore.dir/event.cc.o.d"
  "CMakeFiles/memcore.dir/execution.cc.o"
  "CMakeFiles/memcore.dir/execution.cc.o.d"
  "CMakeFiles/memcore.dir/fencealg.cc.o"
  "CMakeFiles/memcore.dir/fencealg.cc.o.d"
  "CMakeFiles/memcore.dir/relation.cc.o"
  "CMakeFiles/memcore.dir/relation.cc.o.d"
  "libmemcore.a"
  "libmemcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
