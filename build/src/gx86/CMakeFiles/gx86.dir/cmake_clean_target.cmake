file(REMOVE_RECURSE
  "libgx86.a"
)
