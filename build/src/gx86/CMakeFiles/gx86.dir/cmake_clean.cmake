file(REMOVE_RECURSE
  "CMakeFiles/gx86.dir/assembler.cc.o"
  "CMakeFiles/gx86.dir/assembler.cc.o.d"
  "CMakeFiles/gx86.dir/codec.cc.o"
  "CMakeFiles/gx86.dir/codec.cc.o.d"
  "CMakeFiles/gx86.dir/image.cc.o"
  "CMakeFiles/gx86.dir/image.cc.o.d"
  "CMakeFiles/gx86.dir/imagefile.cc.o"
  "CMakeFiles/gx86.dir/imagefile.cc.o.d"
  "CMakeFiles/gx86.dir/interp.cc.o"
  "CMakeFiles/gx86.dir/interp.cc.o.d"
  "CMakeFiles/gx86.dir/isa.cc.o"
  "CMakeFiles/gx86.dir/isa.cc.o.d"
  "CMakeFiles/gx86.dir/memory.cc.o"
  "CMakeFiles/gx86.dir/memory.cc.o.d"
  "libgx86.a"
  "libgx86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gx86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
