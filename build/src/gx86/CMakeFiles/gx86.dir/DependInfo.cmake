
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gx86/assembler.cc" "src/gx86/CMakeFiles/gx86.dir/assembler.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/assembler.cc.o.d"
  "/root/repo/src/gx86/codec.cc" "src/gx86/CMakeFiles/gx86.dir/codec.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/codec.cc.o.d"
  "/root/repo/src/gx86/image.cc" "src/gx86/CMakeFiles/gx86.dir/image.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/image.cc.o.d"
  "/root/repo/src/gx86/imagefile.cc" "src/gx86/CMakeFiles/gx86.dir/imagefile.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/imagefile.cc.o.d"
  "/root/repo/src/gx86/interp.cc" "src/gx86/CMakeFiles/gx86.dir/interp.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/interp.cc.o.d"
  "/root/repo/src/gx86/isa.cc" "src/gx86/CMakeFiles/gx86.dir/isa.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/isa.cc.o.d"
  "/root/repo/src/gx86/memory.cc" "src/gx86/CMakeFiles/gx86.dir/memory.cc.o" "gcc" "src/gx86/CMakeFiles/gx86.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
