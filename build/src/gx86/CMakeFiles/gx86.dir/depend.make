# Empty dependencies file for gx86.
# This may be replaced when dependencies are built.
