file(REMOVE_RECURSE
  "CMakeFiles/models.dir/arm.cc.o"
  "CMakeFiles/models.dir/arm.cc.o.d"
  "CMakeFiles/models.dir/common.cc.o"
  "CMakeFiles/models.dir/common.cc.o.d"
  "CMakeFiles/models.dir/riscv.cc.o"
  "CMakeFiles/models.dir/riscv.cc.o.d"
  "CMakeFiles/models.dir/tcg.cc.o"
  "CMakeFiles/models.dir/tcg.cc.o.d"
  "CMakeFiles/models.dir/x86.cc.o"
  "CMakeFiles/models.dir/x86.cc.o.d"
  "libmodels.a"
  "libmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
