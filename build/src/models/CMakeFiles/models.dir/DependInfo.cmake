
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/arm.cc" "src/models/CMakeFiles/models.dir/arm.cc.o" "gcc" "src/models/CMakeFiles/models.dir/arm.cc.o.d"
  "/root/repo/src/models/common.cc" "src/models/CMakeFiles/models.dir/common.cc.o" "gcc" "src/models/CMakeFiles/models.dir/common.cc.o.d"
  "/root/repo/src/models/riscv.cc" "src/models/CMakeFiles/models.dir/riscv.cc.o" "gcc" "src/models/CMakeFiles/models.dir/riscv.cc.o.d"
  "/root/repo/src/models/tcg.cc" "src/models/CMakeFiles/models.dir/tcg.cc.o" "gcc" "src/models/CMakeFiles/models.dir/tcg.cc.o.d"
  "/root/repo/src/models/x86.cc" "src/models/CMakeFiles/models.dir/x86.cc.o" "gcc" "src/models/CMakeFiles/models.dir/x86.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memcore/CMakeFiles/memcore.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
