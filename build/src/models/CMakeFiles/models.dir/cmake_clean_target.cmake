file(REMOVE_RECURSE
  "libmodels.a"
)
