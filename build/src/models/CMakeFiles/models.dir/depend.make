# Empty dependencies file for models.
# This may be replaced when dependencies are built.
