file(REMOVE_RECURSE
  "CMakeFiles/machine.dir/machine.cc.o"
  "CMakeFiles/machine.dir/machine.cc.o.d"
  "libmachine.a"
  "libmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
