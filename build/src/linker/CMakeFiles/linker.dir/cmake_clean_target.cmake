file(REMOVE_RECURSE
  "liblinker.a"
)
