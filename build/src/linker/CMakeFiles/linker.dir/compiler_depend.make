# Empty compiler generated dependencies file for linker.
# This may be replaced when dependencies are built.
