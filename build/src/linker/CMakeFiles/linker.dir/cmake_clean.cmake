file(REMOVE_RECURSE
  "CMakeFiles/linker.dir/hostlinker.cc.o"
  "CMakeFiles/linker.dir/hostlinker.cc.o.d"
  "CMakeFiles/linker.dir/idl.cc.o"
  "CMakeFiles/linker.dir/idl.cc.o.d"
  "liblinker.a"
  "liblinker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
