# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("memcore")
subdirs("models")
subdirs("litmus")
subdirs("mapping")
subdirs("gx86")
subdirs("tcg")
subdirs("aarch")
subdirs("machine")
subdirs("dbt")
subdirs("linker")
subdirs("hostlib")
subdirs("workloads")
subdirs("risotto")
