file(REMOVE_RECURSE
  "CMakeFiles/hostlib.dir/digest.cc.o"
  "CMakeFiles/hostlib.dir/digest.cc.o.d"
  "CMakeFiles/hostlib.dir/hostlib.cc.o"
  "CMakeFiles/hostlib.dir/hostlib.cc.o.d"
  "CMakeFiles/hostlib.dir/mathlib.cc.o"
  "CMakeFiles/hostlib.dir/mathlib.cc.o.d"
  "CMakeFiles/hostlib.dir/sqlitelike.cc.o"
  "CMakeFiles/hostlib.dir/sqlitelike.cc.o.d"
  "libhostlib.a"
  "libhostlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
