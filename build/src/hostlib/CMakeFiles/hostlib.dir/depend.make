# Empty dependencies file for hostlib.
# This may be replaced when dependencies are built.
