file(REMOVE_RECURSE
  "libhostlib.a"
)
