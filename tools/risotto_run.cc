/**
 * @file
 * risotto-run: the command-line DBT driver.
 *
 *   risotto-run [options] image.riso
 *
 * Options:
 *   --variant NAME    qemu | no-fences | tcg-ver | risotto  (default risotto)
 *   --host ISA        host backend: aarch | rv64 (default aarch); selects
 *                     which simulated host the DBT emits, the machine
 *                     executes and the validator judges (RVWMO for rv64)
 *   --threads N       number of guest threads (tid in guest r0)
 *   --seed N          machine scheduler seed
 *   --randomize       randomized scheduling / relaxed drains
 *   --no-linker       disable the dynamic host library linker
 *   --fault-seed N    arm deterministic fault injection with seed N
 *   --fault-rate P    per-site fault probability in [0,1] (default 0.01
 *                     once --fault-seed is given)
 *   --tier2-threshold N  exec count that promotes a block to a tier-2
 *                     superblock (0 disables tier 2)
 *   --no-tier2        disable tier-2 superblock translation
 *   --no-decode-cache disable the per-image pre-decoded segment; every
 *                     execution surface falls back to per-instruction
 *                     decode-and-switch (the legacy baseline)
 *   --no-fusion       keep the decoder cache but disable peephole
 *                     instruction fusion in the dispatch loops
 *   --no-template-tier disable the tier-0.5 template translator (cold
 *                     blocks made of pre-validated gx86 shapes bypass
 *                     the frontend/optimizer pipeline); the tier also
 *                     stands down by itself under --no-decode-cache,
 *                     --validate and --analysis-elide
 *   --validate        statically validate every translation against the
 *                     axiomatic models (obligation ⊆ guarantee); also
 *                     sweeps every statically reachable block of the
 *                     image up front (parallel across --jobs workers);
 *                     prints verify.* counters and any violations, exit
 *                     3 when violations were found
 *   --jobs N          worker threads for the --validate sweep
 *                     (default: hardware concurrency)
 *   --analysis        run the whole-image static weak-memory analyzer
 *                     (src/analysis) at startup and print the
 *                     classification summary (local / ordered / hot)
 *   --analysis-elide  (implies --analysis) elide the mapped fences in
 *                     blocks the analyzer proved Local; every elision
 *                     is discharged by thread-locality under --validate
 *   --analysis-cert F (implies --analysis) install the translation
 *                     certificate at F (from risotto-analyze --cert)
 *                     and skip per-TB validation for blocks it vouches
 *                     for; a tampered/stale certificate falls back to
 *                     full validation, never to wrong code
 *   --analysis-paranoid  (implies --analysis and --validate) re-run the
 *                     validator on every certificate-driven skip and
 *                     every elided block; exit 3 on any disagreement
 *   --dump-hot N      print the N hottest blocks after the run
 *   --stats           dump translation + machine counters
 *   --stats-json PATH write the merged run counters (incl. persist.*)
 *                     to PATH as stable, key-sorted JSON; includes the
 *                     guest_insns estimate and the wall-clock
 *                     ns_per_guest_insn headline
 *   --tb-cache PATH   persistent translation cache: import the snapshot
 *                     at PATH before the run (missing/corrupt files are
 *                     a graceful cold start) and export the translation
 *                     cache back to PATH after the run
 *   --tb-cache-readonly  with --tb-cache: import only, never write
 *   --tb-cache-verify    with --tb-cache: do not run; parse the
 *                     snapshot, re-validate every record against the
 *                     axiomatic models and print the report (exit 3
 *                     when any record fails, 1 when the file is
 *                     unreadable)
 *   --trace           print every retired host instruction (very verbose)
 *   --disasm          print the guest disassembly and exit
 *   --emit-demo PATH  write a demo image to PATH and exit
 *
 * Exit codes (unified across tools, see support/error.hh): 0 finished,
 * 1 runtime error, 2 usage error, 3 validator violation, 4 the run did
 * not finish (cycle budget exhausted or livelock).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "dbt/backend.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "gx86/imagefile.hh"
#include "persist/snapshot.hh"
#include "risotto/risotto.hh"
#include "rv64/isa.hh"
#include "support/checksum.hh"
#include "support/error.hh"
#include "support/hostisa.hh"
#include "support/threadpool.hh"
#include "tcg/optimizer.hh"
#include "verify/batch.hh"
#include "verify/verifier.hh"

using namespace risotto;

namespace
{

dbt::DbtConfig
configByName(const std::string &name)
{
    if (name == "qemu")
        return dbt::DbtConfig::qemu();
    if (name == "no-fences")
        return dbt::DbtConfig::qemuNoFences();
    if (name == "tcg-ver")
        return dbt::DbtConfig::tcgVer();
    if (name == "risotto")
        return dbt::DbtConfig::risotto();
    fatal("unknown variant '" + name +
          "' (expected qemu|no-fences|tcg-ver|risotto)");
}

/** A demo image: digests a message and prints a summary char. */
gx86::GuestImage
demoImage()
{
    gx86::Assembler a;
    std::vector<std::uint8_t> message;
    for (char c : std::string("the quick brown fox jumps over risotto"))
        message.push_back(static_cast<std::uint8_t>(c));
    const gx86::Addr data = a.dataBytes(message);
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    hostlib::emitGuestCryptoLibrary(a);
    a.bind(start);
    a.movri(1, static_cast<std::int64_t>(data));
    a.movri(2, static_cast<std::int64_t>(message.size()));
    a.callImport("sha256");
    a.movrr(2, 0); // digest
    // Print 8 hex digits of the digest.
    for (int i = 15; i >= 8; --i) {
        a.movrr(1, 2);
        a.shri(1, static_cast<std::uint8_t>(i * 4 % 64));
        a.andi(1, 0xf);
        a.cmpri(1, 10);
        const auto letter = a.newLabel();
        const auto emit = a.newLabel();
        a.jcc(gx86::Cond::Ge, letter);
        a.addi(1, '0');
        a.jmp(emit);
        a.bind(letter);
        a.addi(1, 'a' - 10);
        a.bind(emit);
        a.movri(0, 1);
        a.syscall();
    }
    a.movri(0, 1);
    a.movri(1, '\n');
    a.syscall();
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

/** Slot allocator for compiling outside an engine: numbers exits. */
struct SweepSlots : dbt::ExitSlotAllocator
{
    std::uint32_t next = 1;
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t, aarch::CodeAddr,
                             bool) override
    {
        return next++;
    }
    std::uint32_t dynamicSlot() override { return 0; }
};

using dbt::reachableBlocks;

/** One block's sweep outcome. */
struct SweepCheck
{
    std::uint64_t pairs = 0;
    std::vector<verify::Violation> violations;
};

/** Validate one block exactly as the engine's tier-1 pipeline lowers
 * it, self-contained so blocks validate in parallel. The sweep shares
 * the engine's read-only pre-decoded @p segment (may be null), making
 * the whole BFS decode-free. With @p analysis non-null the sweep
 * reproduces the engine's certificate-driven fence elision and judges
 * it under the same locality discharge. */
SweepCheck
validateOne(const gx86::GuestImage &image, const dbt::DbtConfig &config,
            const gx86::DecodedSegment *segment,
            const analysis::ImageAnalysis *analysis, gx86::Addr head)
{
    SweepCheck check;
    dbt::Frontend frontend(image, config, nullptr);
    frontend.setSegment(segment);
    if (analysis != nullptr && config.analysis && config.analysisElide)
        frontend.setAnalysis(analysis);
    const std::vector<gx86::Instruction> guest = frontend.decodeBlock(head);
    tcg::Block block = frontend.translate(head);
    tcg::optimize(block, config.optimizer);

    aarch::CodeBuffer buffer;
    SweepSlots slots;
    dbt::Backend backend(buffer, config);
    const aarch::CodeAddr entry = backend.compile(block, slots);
    const auto host =
        verify::decodeHostRange(config.host, buffer, entry, buffer.end());

    verify::ValidatorOptions vo;
    vo.rmw = config.rmw;
    const verify::TbValidator validator(vo);
    std::vector<bool> mask;
    const std::vector<bool> *local = nullptr;
    if (analysis != nullptr && config.analysis && config.analysisElide &&
        analysis->rspPrivate) {
        mask = verify::localGuestEvents(guest, true);
        local = &mask;
    }
    const auto report =
        validator.validate(guest, block, host, head, false, local);
    check.pairs = report.pairsChecked;
    check.violations = report.violations;
    return check;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string image_path;
    std::string variant = "risotto";
    support::HostIsa host_isa = support::HostIsa::Aarch;
    std::size_t threads = 1;
    machine::MachineConfig mc;
    FaultPlan faults;
    faults.rate = 0.01;
    bool want_stats = false;
    bool want_disasm = false;
    bool use_linker = true;
    bool tier2 = true;
    bool validate = false;
    bool decode_cache = true;
    bool fusion = true;
    bool template_tier = true;
    std::size_t jobs = 0; // 0: hardware concurrency.
    std::uint64_t tier2_threshold = 0;
    bool tier2_threshold_set = false;
    std::uint64_t dump_hot = 0;
    std::string tb_cache;
    bool tb_cache_readonly = false;
    bool tb_cache_verify = false;
    std::string stats_json;
    bool analysis_on = false;
    bool analysis_elide = false;
    bool analysis_paranoid = false;
    std::string analysis_cert;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for " + arg);
            return argv[i];
        };
        auto nextU64 = [&]() -> std::uint64_t {
            const std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("invalid number '" + v + "' for " + arg);
            }
        };
        auto nextRate = [&]() -> double {
            const std::string v = next();
            double rate = 0.0;
            try {
                rate = std::stod(v);
            } catch (const std::exception &) {
                fatal("invalid number '" + v + "' for " + arg);
            }
            fatalIf(rate < 0.0 || rate > 1.0,
                    arg + " must be in [0, 1], got " + v);
            return rate;
        };
        try {
            if (arg == "--variant")
                variant = next();
            else if (arg == "--host") {
                const std::string v = next();
                const auto parsed = support::parseHostIsa(v);
                fatalIf(!parsed, "unknown host '" + v +
                                     "' (expected aarch|rv64)");
                host_isa = *parsed;
            } else if (arg == "--threads")
                threads = nextU64();
            else if (arg == "--seed")
                mc.seed = nextU64();
            else if (arg == "--randomize")
                mc.randomize = true;
            else if (arg == "--no-linker")
                use_linker = false;
            else if (arg == "--fault-seed")
                faults.seed = nextU64();
            else if (arg == "--fault-rate")
                faults.rate = nextRate();
            else if (arg == "--tier2-threshold") {
                tier2_threshold = nextU64();
                tier2_threshold_set = true;
            } else if (arg == "--no-tier2")
                tier2 = false;
            else if (arg == "--no-decode-cache")
                decode_cache = false;
            else if (arg == "--no-fusion")
                fusion = false;
            else if (arg == "--no-template-tier")
                template_tier = false;
            else if (arg == "--validate")
                validate = true;
            else if (arg == "--analysis")
                analysis_on = true;
            else if (arg == "--analysis-elide") {
                analysis_on = true;
                analysis_elide = true;
            } else if (arg == "--analysis-cert") {
                analysis_on = true;
                analysis_cert = next();
                // Claims are statements about the validating pipeline
                // (the fingerprint they key by covers this flag).
                validate = true;
            } else if (arg == "--analysis-paranoid") {
                analysis_on = true;
                analysis_paranoid = true;
                validate = true;
            }
            else if (arg == "--jobs")
                jobs = static_cast<std::size_t>(nextU64());
            else if (arg == "--dump-hot")
                dump_hot = nextU64();
            else if (arg == "--stats")
                want_stats = true;
            else if (arg == "--stats-json")
                stats_json = next();
            else if (arg == "--tb-cache")
                tb_cache = next();
            else if (arg == "--tb-cache-readonly")
                tb_cache_readonly = true;
            else if (arg == "--tb-cache-verify")
                tb_cache_verify = true;
            else if (arg == "--trace") {
                mc.trace = [](const machine::Core &core,
                              const aarch::AInstr &in) {
                    std::cerr << "[core " << core.id << " @" << core.pc
                              << "] " << in.toString() << "\n";
                };
                mc.traceRv64 = [](const machine::Core &core,
                                  const rv64::RInstr &in) {
                    std::cerr << "[core " << core.id << " @" << core.pc
                              << "] " << in.toString() << "\n";
                };
            }
            else if (arg == "--disasm")
                want_disasm = true;
            else if (arg == "--emit-demo") {
                const std::string path = next();
                gx86::saveImage(demoImage(), path);
                std::cout << "wrote demo image to " << path << "\n";
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "usage: risotto-run [options] image.riso\n"
                             "see the file header for options\n";
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option " + arg +
                      " (see risotto-run --help)");
            } else if (!image_path.empty()) {
                fatal("more than one image given ('" + image_path +
                      "' and '" + arg + "'); see risotto-run --help");
            } else {
                image_path = arg;
            }
        } catch (const Error &e) {
            std::cerr << "risotto-run: " << e.what() << "\n";
            return toolExitCode(ToolExit::Usage);
        }
    }

    try {
        fatalIf(image_path.empty(),
                "no image given (try --emit-demo demo.riso)");
        const gx86::GuestImage image = gx86::loadImage(image_path);
        if (want_disasm) {
            std::cout << image.disassemble();
            return 0;
        }
        EmulatorOptions options;
        options.config = configByName(variant);
        options.config.host = host_isa;
        options.config.hostLinker =
            options.config.hostLinker && use_linker;
        options.config.faults = faults;
        options.config.tier2 = tier2;
        options.config.validateTranslations = validate;
        options.config.decodeCache = decode_cache;
        options.config.fusion = fusion;
        options.config.templateTier = template_tier;
        options.config.analysis = analysis_on;
        options.config.analysisElide = analysis_elide;
        options.config.analysisSkip = !analysis_cert.empty();
        options.config.analysisParanoid = analysis_paranoid;
        if (tier2_threshold_set)
            options.config.tier2Threshold = tier2_threshold;

        Emulator emulator(image, options);

        if (!analysis_cert.empty()) {
            fatalIf(!support::fileReadable(analysis_cert),
                    "cannot read certificate " + analysis_cert);
            analysis::Certificate cert;
            std::string cert_error;
            if (!analysis::parseCertificate(
                    support::readFileBytes(analysis_cert), cert,
                    &cert_error)) {
                // A tampered certificate is never fatal: the engine
                // simply validates everything itself.
                std::cout << "[risotto-run] certificate " << analysis_cert
                          << " rejected (" << cert_error
                          << "); falling back to full validation\n";
            } else if (!emulator.engine().setCertificate(
                           std::move(cert))) {
                std::cout << "[risotto-run] certificate " << analysis_cert
                          << " is for a different image or config; "
                             "falling back to full validation\n";
            }
        }

        // Whole-image static sweep: validate every reachable block
        // before running anything, fanned out over the pool. Both the
        // reachability BFS and the per-worker frontends consume the
        // engine's pre-decoded segment, so the sweep re-runs no decode.
        std::uint64_t sweep_blocks = 0;
        std::uint64_t sweep_pairs = 0;
        std::vector<verify::Violation> sweep_violations;
        if (validate) {
            // --no-decode-cache takes the legacy path explicitly: a
            // null segment makes reachableBlocks and every per-worker
            // frontend fall back to GuestImage::decodeAt. Both paths
            // must visit the identical reachable-block set (asserted by
            // the decode-parity regression test in test_analysis).
            const gx86::DecodedSegment *segment =
                options.config.decodeCache
                    ? emulator.engine().segment().get()
                    : nullptr;
            const analysis::ImageAnalysis *sweep_analysis =
                emulator.engine().analysis();
            const std::vector<gx86::Addr> heads =
                reachableBlocks(image, options.config, segment);
            support::ThreadPool pool(jobs);
            std::vector<SweepCheck> checks(heads.size());
            pool.parallelFor(0, heads.size(), 1, [&](std::size_t i) {
                checks[i] = validateOne(image, options.config, segment,
                                        sweep_analysis, heads[i]);
            });
            sweep_blocks = heads.size();
            for (const SweepCheck &check : checks) {
                sweep_pairs += check.pairs;
                sweep_violations.insert(sweep_violations.end(),
                                        check.violations.begin(),
                                        check.violations.end());
            }
        }

        if (tb_cache_verify) {
            // Audit mode: re-validate every snapshot record against the
            // axiomatic models without running (or installing) anything.
            fatalIf(tb_cache.empty(), "--tb-cache-verify needs --tb-cache");
            fatalIf(!support::fileReadable(tb_cache),
                    "cannot read snapshot " + tb_cache);
            persist::ParseReport parsed;
            const persist::Snapshot snap =
                persist::parse(support::readFileBytes(tb_cache), parsed);
            std::cout << "[risotto-run] tb-cache-verify " << tb_cache
                      << ": header=" << (parsed.headerOk ? "ok" : "bad")
                      << " records=" << parsed.recordsLoaded
                      << " bad-checksum=" << parsed.recordsBadChecksum
                      << " bad-bounds=" << parsed.recordsBadBounds
                      << " truncated=" << parsed.recordsTruncated << "\n";
            if (!parsed.headerOk) {
                std::cerr << "risotto-run: " << parsed.error << "\n";
                return toolExitCode(ToolExit::RuntimeError);
            }
            const auto audit =
                emulator.engine().verifyPersistentCache(snap);
            std::cout << "  revalidation: checked=" << audit.itemsChecked
                      << " failed=" << audit.itemsFailed
                      << " pairs=" << audit.pairsChecked << "\n";
            const std::size_t shown =
                std::min<std::size_t>(audit.violations.size(), 20);
            for (std::size_t v = 0; v < shown; ++v)
                std::cout << "    " << audit.violations[v].toString()
                          << "\n";
            if (audit.violations.size() > shown)
                std::cout << "    ... and "
                          << audit.violations.size() - shown << " more\n";
            return toolExitCode(audit.ok() ? ToolExit::Ok
                                           : ToolExit::ValidatorViolation);
        }

        if (!tb_cache.empty()) {
            const dbt::PersistReport warm =
                emulator.engine().loadPersistentCache(tb_cache);
            std::cout << "[risotto-run] tb-cache " << tb_cache
                      << ": applied=" << (warm.applied ? "yes" : "no")
                      << " loaded=" << warm.loaded
                      << " rejected=" << warm.rejected;
            if (!warm.note.empty())
                std::cout << " (" << warm.note << ")";
            std::cout << "\n";
        }

        const auto wall_start = std::chrono::steady_clock::now();
        const auto result = emulator.run(threads, mc);
        const std::uint64_t wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count());
        const std::uint64_t guest_insns =
            emulator.engine().guestInsnEstimate();
        const double ns_per_insn =
            guest_insns ? static_cast<double>(wall_ns) /
                              static_cast<double>(guest_insns)
                        : 0.0;
        char ns_per_insn_str[32];
        std::snprintf(ns_per_insn_str, sizeof ns_per_insn_str, "%.3f",
                      ns_per_insn);

        if (!tb_cache.empty() && !tb_cache_readonly &&
            emulator.engine().savePersistentCache(tb_cache))
            std::cout << "[risotto-run] tb-cache " << tb_cache
                      << ": saved "
                      << emulator.engine().stats().get("persist.tb_saved")
                      << " records\n";

        for (std::size_t t = 0; t < threads; ++t) {
            if (!result.outputs[t].empty())
                std::cout << result.outputs[t];
        }
        std::cout << "[risotto-run] variant=" << variant
                  << " host=" << support::hostIsaName(host_isa)
                  << " threads=" << threads
                  << " finished=" << (result.finished ? "yes" : "no")
                  << " diagnosis="
                  << machine::runDiagnosisName(result.diagnosis)
                  << " makespan=" << result.makespan << " cycles\n";
        std::cout << "  tiers: tier2="
                  << (emulator.engine().config().tier2 &&
                              emulator.engine().config().tier2Threshold > 0
                          ? "on"
                          : "off")
                  << " superblocks=" << result.tier2Superblocks
                  << " blocks-subsumed=" << result.tier2BlocksSubsumed
                  << " xblock-fences-removed="
                  << result.crossBlockFencesRemoved
                  << " xblock-mem-ops-eliminated="
                  << result.crossBlockMemOpsEliminated << "\n";
        std::cout << "  dispatch: decode-cache="
                  << (decode_cache ? "on" : "off")
                  << " fusion=" << (decode_cache && fusion ? "on" : "off")
                  << " segment-entries="
                  << result.stats.get("dbt.segment_entries")
                  << " fused-entries="
                  << result.stats.get("dbt.segment_fused_entries")
                  << " guest-insns=" << guest_insns << "\n";
        {
            // The tier can be off by flag or stood down by itself; say
            // which, so a disabled tier is visible and attributable.
            const auto &es = emulator.engine().stats();
            std::string mode = "on";
            if (!template_tier)
                mode = "off";
            else if (es.get("dbt.template_disabled_no_segment") > 0)
                mode = "off(no-decode-cache)";
            else if (es.get("dbt.template_disabled_validate") > 0)
                mode = "off(validate)";
            else if (es.get("dbt.template_disabled_elide") > 0)
                mode = "off(analysis-elide)";
            std::cout << "  template-tier: mode=" << mode
                      << " blocks=" << es.get("dbt.template_blocks")
                      << " declined=" << es.get("dbt.template_declined")
                      << " patterns-checked="
                      << es.get("dbt.template_patterns_checked")
                      << " patterns-disabled="
                      << es.get("dbt.template_patterns_disabled")
                      << " first-dispatch-ns="
                      << es.get("dbt.time_to_first_dispatch_ns") << "\n";
            for (const auto &report :
                 emulator.engine().templateReports()) {
                if (report.ok())
                    continue;
                std::cout << "    template " << report.name
                          << ": violations="
                          << report.violations.size()
                          << " (disabled)\n";
                for (const auto &violation : report.violations)
                    std::cout << "      " << violation.toString()
                              << "\n";
            }
        }
        if (analysis_on) {
            const analysis::ImageAnalysis *a =
                emulator.engine().analysis();
            const auto &es = emulator.engine().stats();
            std::cout << "  analysis: rsp-private="
                      << (a != nullptr && a->rspPrivate ? "yes" : "no")
                      << " local=" << (a != nullptr ? a->blocksLocal : 0)
                      << " ordered="
                      << (a != nullptr ? a->blocksOrdered : 0)
                      << " hot=" << (a != nullptr ? a->blocksHot : 0)
                      << " fences-elided="
                      << es.get("analysis.fences_elided")
                      << " validations-skipped="
                      << es.get("analysis.validations_skipped")
                      << " paranoid-rechecks="
                      << es.get("analysis.paranoid_rechecks")
                      << " paranoid-disagreements="
                      << es.get("analysis.paranoid_disagreements")
                      << "\n";
        }
        if (dump_hot > 0) {
            const auto hot =
                emulator.engine().cache().hottest(dump_hot);
            std::cout << "  hottest blocks:\n";
            for (const auto &h : hot)
                std::cout << "    pc=" << h.guestPc
                          << " execs=" << h.execCount
                          << " tier=" << dbt::tierName(h.tier) << "\n";
        }
        if (validate) {
            const auto &stats = result.stats;
            std::cout << "  validate: blocks="
                      << stats.get("verify.blocks_checked")
                      << " superblocks="
                      << stats.get("verify.superblocks_checked")
                      << " pairs=" << stats.get("verify.pairs_checked")
                      << " promotions-rejected="
                      << stats.get("verify.promotions_rejected")
                      << " violations=" << result.validationViolations
                      << "\n";
            const auto &violations = emulator.engine().violations();
            const std::size_t shown =
                std::min<std::size_t>(violations.size(), 20);
            for (std::size_t v = 0; v < shown; ++v)
                std::cout << "    " << violations[v].toString() << "\n";
            if (violations.size() > shown)
                std::cout << "    ... and " << violations.size() - shown
                          << " more\n";
            const auto &fusion_reports =
                emulator.engine().fusionReports();
            std::uint64_t fusion_pairs = 0;
            std::size_t fusion_violations = 0;
            std::size_t fusion_disabled = 0;
            for (const auto &report : fusion_reports) {
                fusion_pairs += report.pairsChecked;
                fusion_violations += report.violations.size();
                if (!report.ok())
                    ++fusion_disabled;
            }
            std::cout << "  validate-fusion: patterns="
                      << fusion_reports.size()
                      << " pairs=" << fusion_pairs
                      << " violations=" << fusion_violations
                      << " disabled=" << fusion_disabled << "\n";
            for (const auto &report : fusion_reports) {
                if (report.ok())
                    continue;
                std::cout << "    pattern " << report.name
                          << ": guards="
                          << (report.guardsHold ? "ok" : "BROKEN")
                          << " violations=" << report.violations.size()
                          << " (disabled)\n";
                for (const auto &violation : report.violations)
                    std::cout << "      " << violation.toString() << "\n";
            }
            std::cout << "  validate-sweep: blocks=" << sweep_blocks
                      << " pairs=" << sweep_pairs
                      << " violations=" << sweep_violations.size() << "\n";
            const std::size_t sweep_shown =
                std::min<std::size_t>(sweep_violations.size(), 20);
            for (std::size_t v = 0; v < sweep_shown; ++v)
                std::cout << "    " << sweep_violations[v].toString()
                          << "\n";
            if (sweep_violations.size() > sweep_shown)
                std::cout << "    ... and "
                          << sweep_violations.size() - sweep_shown
                          << " more\n";
        }
        if (faults.armed())
            std::cout << "  faults: seed=" << faults.seed
                      << " rate=" << faults.rate
                      << " fallback-blocks=" << result.fallbackBlocks
                      << " translate-retries=" << result.translationRetries
                      << "\n";
        for (std::size_t t = 0; t < threads; ++t)
            std::cout << "  thread " << t << ": exit "
                      << result.exitCodes[t] << "\n";
        if (want_stats)
            for (const auto &[name, value] : result.stats.all())
                std::cout << "  " << name << " = " << value << "\n";
        if (!stats_json.empty()) {
            // The run snapshot, with translation-side counters refreshed
            // so post-run persist.* activity (the snapshot save) shows.
            // Rendered as strings so the two headline throughput keys
            // can carry a decimal while everything stays key-sorted.
            std::map<std::string, std::string> merged;
            for (const auto &[name, value] : result.stats.all())
                merged[name] = std::to_string(value);
            for (const auto &[name, value] :
                 emulator.engine().stats().all())
                merged[name] = std::to_string(value);
            merged["guest_insns"] = std::to_string(guest_insns);
            merged["host"] =
                "\"" + support::hostIsaName(host_isa) + "\"";
            merged["ns_per_guest_insn"] = ns_per_insn_str;
            merged["time_to_first_dispatch_ns"] = std::to_string(
                emulator.engine().stats().get(
                    "dbt.time_to_first_dispatch_ns"));
            std::ofstream out(stats_json);
            fatalIf(!out, "cannot open " + stats_json + " for writing");
            out << "{\n";
            bool first = true;
            for (const auto &[name, value] : merged) {
                out << (first ? "" : ",\n") << "  \"" << name
                    << "\": " << value;
                first = false;
            }
            out << "\n}\n";
            fatalIf(!out, "write failed for " + stats_json);
        }
        if (validate &&
            (result.validationViolations > 0 || !sweep_violations.empty()))
            return toolExitCode(ToolExit::ValidatorViolation);
        if (analysis_paranoid &&
            emulator.engine().stats().get(
                "analysis.paranoid_disagreements") > 0)
            return toolExitCode(ToolExit::ValidatorViolation);
        return toolExitCode(result.finished ? ToolExit::Ok
                                            : ToolExit::BudgetExhausted);
    } catch (const Error &e) {
        std::cerr << "risotto-run: " << e.what() << "\n";
        return toolExitCode(ToolExit::RuntimeError);
    }
}
