/**
 * @file
 * risotto-verify: fuzz the translation pipeline against the validator.
 *
 *   risotto-verify [options]
 *
 * Seeds random gx86 basic blocks (loads, stores, locked RMWs, MFENCEs,
 * ALU noise) through the full frontend -> optimizer -> backend pipeline
 * of a chosen scheme, under *every* optimizer ablation (all 16 on/off
 * combinations of fence merging, constant folding, memory elimination
 * and dead-code elimination), and statically validates each translation:
 * the x86-TSO ordering obligations of the guest block must be contained
 * in the guarantee graph of both the optimized TCG IR and the emitted
 * Arm code (see src/verify).
 *
 * Options:
 *   --scheme NAME   risotto | risotto-rmw2 | tcg-ver | qemu | qemu-rmw2 |
 *                   nofences | figure3           (default risotto)
 *   --host ISA      host backend: aarch | rv64 (default aarch). With
 *                   rv64 the emitted RISC-V code is judged under the
 *                   RVWMO ppo; figure3 is aarch-only (it audits the
 *                   desired *Arm* mapping, not a pipeline)
 *   --blocks N      random blocks to check       (default 1000)
 *   --seed N        RNG seed                     (default 1)
 *   --amo-rule R    corrected | original  (default corrected; figure3
 *                   defaults to original, the rule the paper proved the
 *                   desired mapping unsound against)
 *   --verbose       print every violation instead of a sample
 *   --jobs N        worker threads (default: hardware concurrency).
 *                   Blocks are generated serially from the single seed
 *                   and checked in parallel, results merged in block
 *                   order -- output and exit code are identical at any
 *                   job count.
 *
 * Expected outcomes (the paper's Figures 2/3/7 in executable form),
 * identical under --host=aarch and --host=rv64:
 *   risotto / risotto-rmw2 / tcg-ver / qemu  -- clean (exit 0)
 *   nofences                                 -- flagged (exit 3)
 *   qemu-rmw2  (the GCC-9 exclusive-pair helper, Section 3) -- flagged
 *   figure3    (desired mapping, original amo rule)         -- flagged
 */

#include <iostream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "dbt/backend.hh"
#include "dbt/config.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "support/error.hh"
#include "support/hostisa.hh"
#include "support/threadpool.hh"
#include "tcg/optimizer.hh"
#include "verify/verifier.hh"

using namespace risotto;

namespace
{

/** Slot allocator for compiling outside an engine: numbers exits. */
struct DummySlots : dbt::ExitSlotAllocator
{
    std::uint32_t next = 1;
    std::uint32_t staticSlot(std::uint64_t, std::uint64_t, aarch::CodeAddr,
                             bool) override
    {
        return next++;
    }
    std::uint32_t dynamicSlot() override { return 0; }
};

dbt::DbtConfig
configByScheme(const std::string &scheme)
{
    if (scheme == "risotto" || scheme == "figure3")
        return dbt::DbtConfig::risotto();
    if (scheme == "risotto-rmw2") {
        auto c = dbt::DbtConfig::risotto();
        c.rmw = mapping::RmwLowering::FencedRmw2;
        return c;
    }
    if (scheme == "tcg-ver")
        return dbt::DbtConfig::tcgVer();
    if (scheme == "qemu")
        return dbt::DbtConfig::qemu();
    if (scheme == "qemu-rmw2") {
        auto c = dbt::DbtConfig::qemu();
        c.rmw = mapping::RmwLowering::HelperRmw2AL;
        return c;
    }
    if (scheme == "nofences")
        return dbt::DbtConfig::qemuNoFences();
    fatal("unknown scheme '" + scheme +
          "' (expected risotto|risotto-rmw2|tcg-ver|qemu|qemu-rmw2|"
          "nofences|figure3)");
}

/**
 * One random basic block. Memory ops dominate so ordering obligations
 * are dense; a few base registers (some constant, some opaque) make the
 * address tracker exercise both same-location and cross-location pairs.
 */
gx86::GuestImage
randomBlock(std::mt19937_64 &rng)
{
    gx86::Assembler a;
    auto pick = [&](int n) { return static_cast<int>(rng() % n); };
    auto reg = [&]() { return static_cast<gx86::Reg>(4 + pick(4)); };
    auto base = [&]() { return static_cast<gx86::Reg>(pick(3)); };
    auto off = [&]() { return static_cast<std::int32_t>(8 * pick(8)); };
    a.defineSymbol("main");
    const int count = 4 + pick(13);
    for (int i = 0; i < count; ++i) {
        switch (pick(100)) {
          case 0 ... 19:
            a.load(reg(), base(), off());
            break;
          case 20 ... 35:
            a.store(base(), off(), reg());
            break;
          case 36 ... 41:
            a.storei(base(), off(), static_cast<std::int32_t>(pick(256)));
            break;
          case 42 ... 45:
            a.load8(reg(), base(), off());
            break;
          case 46 ... 49:
            a.store8(base(), off(), reg());
            break;
          case 50 ... 55:
            a.lockCmpxchg(base(), off(), reg());
            break;
          case 56 ... 61:
            a.lockXadd(base(), off(), reg());
            break;
          case 62 ... 69:
            a.mfence();
            break;
          case 70 ... 76: // Re-point a base at a known constant address.
            a.movri(base(), 0x1000 + 8 * pick(16));
            break;
          case 77 ... 82: // Slide a base by a constant (stays analyzable).
            a.addi(base(), 8 * pick(4));
            break;
          default:
            switch (pick(4)) {
              case 0:
                a.movri(reg(), pick(1 << 20));
                break;
              case 1:
                a.movrr(reg(), reg());
                break;
              case 2:
                a.add(reg(), reg());
                break;
              default:
                a.xor_(reg(), reg());
                break;
            }
            break;
        }
    }
    a.hlt();
    return a.finish("main");
}

void
printViolation(const verify::Violation &v, const std::string &scheme,
               int combo)
{
    std::cout << "  [" << scheme << " opt=" << combo << "] "
              << v.toString() << "\n";
}

/** Everything one block's sweep produced; merged in block order. */
struct BlockResult
{
    std::uint64_t pairs = 0;
    std::uint64_t combos = 0;
    std::vector<std::pair<int, verify::Violation>> violations;
};

/**
 * Check one pre-generated block image: either the Figure-3 desired
 * mapping, or the full 16-ablation optimizer grid of @p base_config.
 * Self-contained (own Frontend/Backend/buffer) so blocks check in
 * parallel.
 */
BlockResult
checkBlock(const gx86::GuestImage &image, const dbt::DbtConfig &base_config,
           bool figure3, models::ArmModel::AmoRule amo_rule)
{
    BlockResult result;
    dbt::DbtConfig config = base_config;
    dbt::Frontend frontend(image, config, nullptr);
    const std::vector<gx86::Instruction> guest =
        frontend.decodeBlock(image.entry);

    if (figure3) {
        // The paper's "desired" direct mapping (Figure 3): LDAPR / STLR
        // / casal halves, checked straight against the Arm guarantee
        // under the chosen amo rule.
        verify::ValidatorOptions vo;
        vo.amoRule = amo_rule;
        const verify::TbValidator validator(vo);
        const auto report = validator.checkAgainst(
            guest, verify::desiredArmEvents(guest), verify::Level::Arm,
            image.entry);
        result.pairs += report.pairsChecked;
        ++result.combos;
        for (const auto &v : report.violations)
            result.violations.emplace_back(-1, v);
        return result;
    }

    for (int combo = 0; combo < 16; ++combo) {
        config.optimizer.fenceMerging = (combo & 1) != 0;
        config.optimizer.constantFolding = (combo & 2) != 0;
        config.optimizer.memoryElimination = (combo & 4) != 0;
        config.optimizer.deadCodeElimination = (combo & 8) != 0;

        tcg::Block block = frontend.translate(image.entry);
        tcg::optimize(block, config.optimizer);

        aarch::CodeBuffer buffer;
        DummySlots slots;
        dbt::Backend backend(buffer, config);
        const aarch::CodeAddr entry = backend.compile(block, slots);
        const auto host = verify::decodeHostRange(config.host, buffer,
                                                  entry, buffer.end());

        verify::ValidatorOptions vo;
        vo.rmw = config.rmw;
        vo.amoRule = amo_rule;
        const verify::TbValidator validator(vo);
        const auto report =
            validator.validate(guest, block, host, image.entry, false);
        result.pairs += report.pairsChecked;
        ++result.combos;
        for (const auto &v : report.violations)
            result.violations.emplace_back(combo, v);
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scheme = "risotto";
    support::HostIsa host_isa = support::HostIsa::Aarch;
    std::uint64_t blocks = 1000;
    std::uint64_t seed = 1;
    std::size_t jobs = 0; // 0: hardware concurrency.
    bool verbose = false;
    std::string amo_name;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for " + arg);
            return argv[i];
        };
        auto nextU64 = [&]() -> std::uint64_t {
            const std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("invalid number '" + v + "' for " + arg);
            }
        };
        try {
            if (arg == "--scheme")
                scheme = next();
            else if (arg == "--host") {
                const std::string v = next();
                const auto parsed = support::parseHostIsa(v);
                fatalIf(!parsed, "unknown host '" + v +
                                     "' (expected aarch|rv64)");
                host_isa = *parsed;
            } else if (arg == "--blocks")
                blocks = nextU64();
            else if (arg == "--seed")
                seed = nextU64();
            else if (arg == "--jobs")
                jobs = static_cast<std::size_t>(nextU64());
            else if (arg == "--amo-rule")
                amo_name = next();
            else if (arg == "--verbose")
                verbose = true;
            else if (arg == "--help" || arg == "-h") {
                std::cout << "usage: risotto-verify [options]\n"
                             "see the file header for options\n";
                return 0;
            } else {
                fatal("unknown option " + arg +
                      " (see risotto-verify --help)");
            }
        } catch (const Error &e) {
            std::cerr << "risotto-verify: " << e.what() << "\n";
            return toolExitCode(ToolExit::Usage);
        }
    }

    try {
        const bool figure3 = scheme == "figure3";
        fatalIf(figure3 && host_isa != support::HostIsa::Aarch,
                "figure3 audits the desired Arm mapping; it has no "
                "--host=rv64 form");
        if (amo_name.empty())
            amo_name = figure3 ? "original" : "corrected";
        models::ArmModel::AmoRule amo_rule;
        if (amo_name == "corrected")
            amo_rule = models::ArmModel::AmoRule::Corrected;
        else if (amo_name == "original")
            amo_rule = models::ArmModel::AmoRule::Original;
        else
            fatal("unknown amo rule '" + amo_name +
                  "' (expected corrected|original)");

        dbt::DbtConfig config = configByScheme(scheme);
        config.host = host_isa;

        // Generate every block image serially from the one seeded rng:
        // the stream -- and thus the corpus -- is identical no matter
        // how many workers later check it.
        std::mt19937_64 rng(seed);
        std::vector<gx86::GuestImage> images;
        images.reserve(blocks);
        for (std::uint64_t b = 0; b < blocks; ++b)
            images.push_back(randomBlock(rng));

        support::ThreadPool pool(jobs);
        std::vector<BlockResult> results(images.size());
        pool.parallelFor(0, images.size(), 1, [&](std::size_t b) {
            results[b] = checkBlock(images[b], config, figure3, amo_rule);
        });

        // Merge and report in block order.
        std::uint64_t pairs = 0;
        std::uint64_t combos_run = 0;
        std::uint64_t total_violations = 0;
        std::uint64_t shown = 0;
        for (const BlockResult &result : results) {
            pairs += result.pairs;
            combos_run += result.combos;
            total_violations += result.violations.size();
            for (const auto &[combo, v] : result.violations) {
                if (verbose || shown < 10) {
                    printViolation(v, scheme, combo);
                    ++shown;
                }
            }
        }

        if (!verbose && total_violations > shown)
            std::cout << "  ... and " << total_violations - shown
                      << " more\n";
        std::cout << "[risotto-verify] scheme=" << scheme
                  << " host=" << support::hostIsaName(host_isa)
                  << " amo-rule=" << amo_name << " blocks=" << blocks
                  << " seed=" << seed
                  << " translations-checked=" << combos_run
                  << " pairs-checked=" << pairs
                  << " violations=" << total_violations << "\n";
        return toolExitCode(total_violations == 0
                                ? ToolExit::Ok
                                : ToolExit::ValidatorViolation);
    } catch (const Error &e) {
        std::cerr << "risotto-verify: " << e.what() << "\n";
        return toolExitCode(ToolExit::RuntimeError);
    }
}
