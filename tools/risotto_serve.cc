/**
 * @file
 * risotto-serve: the fault-isolated multi-tenant translation service.
 *
 *   risotto-serve [options] image.riso
 *
 * Runs N concurrent guest sessions over one shared, frozen translation
 * artifact (warm-seeded from a persistent .rtbc snapshot when given),
 * with admission control, per-session fault containment, retry with
 * randomized exponential backoff, and session-by-session degradation to
 * interpretation. Produce an image with `risotto-run --emit-demo`.
 *
 * Options:
 *   --sessions N      guest sessions to request (default 8)
 *   --jobs N          concurrent session workers (default 1; <=1 serial)
 *   --queue N         admission queue capacity behind the workers;
 *                     arrivals beyond jobs+N are shed (default
 *                     unbounded)
 *   --threads N       guest threads per session (default 1)
 *   --variant NAME    qemu | no-fences | tcg-ver | risotto
 *   --host ISA        host backend: aarch | rv64 (default aarch); the
 *                     shared artifact is compiled for it and every
 *                     session's machine executes it
 *   --seed N          service seed; per-session machine/backoff streams
 *                     derive from (seed, session id)
 *   --insn-budget N   retired-instruction budget per core; exceeding it
 *                     evicts the session (0 = unlimited)
 *   --max-cycles N    cycle budget per core per attempt
 *   --retries N       max attempts per session incl. the first
 *   --backoff-base N  backoff window before the first retry (cycles)
 *   --backoff-cap N   backoff window growth cap (cycles)
 *   --fault-seed N    arm per-session deterministic fault injection
 *   --fault-rate P    per-site fault probability in [0,1]
 *   --tb-cache PATH   warm-start snapshot; records are checksum- and
 *                     validator-checked on import, unusable snapshots
 *                     degrade to cold preparation
 *   --no-validate-snapshot  skip validator re-checks on import
 *   --analysis        run the whole-image static analyzer at prepare time
 *   --analysis-elide  also elide mapped fences in blocks the analyzer
 *                     proves thread-private (implies --analysis)
 *   --analysis-cert FILE  install a standalone translation certificate;
 *                     validated claims skip per-record re-validation.
 *                     A corrupt or mismatched certificate is ignored
 *                     (full validation, never wrong code)
 *   --analysis-paranoid   re-run the validator on every certificate
 *                     claim anyway; disagreements exit 3
 *   --no-precompile   skip cold pre-translation (degrades straight to
 *                     interpreter-only when no snapshot applies)
 *   --no-template-tier disable the tier-0.5 template translator during
 *                     artifact preparation (it already stands down by
 *                     itself whenever preparation validates, e.g. with
 *                     a certificate or --analysis-paranoid)
 *   --interp-only     force the interpreter-only rung
 *   --serial-check    re-run everything with --jobs 1 and require
 *                     byte-identical per-session results
 *   --stats           dump the aggregated serve.* / persist.* counters
 *   --stats-json PATH write them to PATH as stable key-sorted JSON
 *
 * Exit codes (unified across tools, see support/error.hh):
 *   0 every admitted session finished; 1 runtime error; 2 usage error;
 *   3 a session ended in validator-violation; 4 sessions were evicted
 *   or exhausted their fault-retry budget.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "gx86/imagefile.hh"
#include "serve/manager.hh"
#include "support/error.hh"
#include "support/hostisa.hh"

using namespace risotto;

namespace
{

dbt::DbtConfig
configByName(const std::string &name)
{
    if (name == "qemu")
        return dbt::DbtConfig::qemu();
    if (name == "no-fences")
        return dbt::DbtConfig::qemuNoFences();
    if (name == "tcg-ver")
        return dbt::DbtConfig::tcgVer();
    if (name == "risotto")
        return dbt::DbtConfig::risotto();
    fatal("unknown variant '" + name +
          "' (expected qemu|no-fences|tcg-ver|risotto)");
}

/** Latency at quantile @p q (0..100) over non-shed sessions. */
std::uint64_t
latencyQuantile(std::vector<std::uint64_t> latencies, unsigned q)
{
    if (latencies.empty())
        return 0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t index =
        std::min(latencies.size() - 1,
                 static_cast<std::size_t>(q) * latencies.size() / 100);
    return latencies[index];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string image_path;
    std::string variant = "risotto";
    support::HostIsa host_isa = support::HostIsa::Aarch;
    serve::ServeConfig config;
    config.sessions = 8;
    serve::ArtifactConfig artifact_config;
    bool analysis_on = false;
    bool analysis_elide = false;
    bool analysis_paranoid = false;
    bool serial_check = false;
    bool template_tier = true;
    bool want_stats = false;
    std::string stats_json;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for " + arg);
            return argv[i];
        };
        auto nextU64 = [&]() -> std::uint64_t {
            const std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("invalid number '" + v + "' for " + arg);
            }
        };
        auto nextRate = [&]() -> double {
            const std::string v = next();
            double rate = 0.0;
            try {
                rate = std::stod(v);
            } catch (const std::exception &) {
                fatal("invalid number '" + v + "' for " + arg);
            }
            fatalIf(rate < 0.0 || rate > 1.0,
                    arg + " must be in [0, 1], got " + v);
            return rate;
        };
        try {
            if (arg == "--sessions")
                config.sessions = static_cast<std::size_t>(nextU64());
            else if (arg == "--jobs")
                config.jobs = static_cast<std::size_t>(nextU64());
            else if (arg == "--queue")
                config.admission.queueCapacity =
                    static_cast<std::size_t>(nextU64());
            else if (arg == "--threads")
                config.session.threads =
                    static_cast<std::size_t>(nextU64());
            else if (arg == "--variant")
                variant = next();
            else if (arg == "--host") {
                const std::string v = next();
                const auto parsed = support::parseHostIsa(v);
                fatalIf(!parsed, "unknown host '" + v +
                                     "' (expected aarch|rv64)");
                host_isa = *parsed;
            } else if (arg == "--seed")
                config.session.seed = nextU64();
            else if (arg == "--insn-budget")
                config.session.insnBudget = nextU64();
            else if (arg == "--max-cycles")
                config.session.maxCyclesPerCore = nextU64();
            else if (arg == "--retries")
                config.session.retry.maxAttempts =
                    static_cast<unsigned>(nextU64());
            else if (arg == "--backoff-base")
                config.session.retry.baseDelay = nextU64();
            else if (arg == "--backoff-cap")
                config.session.retry.capDelay = nextU64();
            else if (arg == "--fault-seed")
                config.session.faults.seed = nextU64();
            else if (arg == "--fault-rate")
                config.session.faults.rate = nextRate();
            else if (arg == "--tb-cache")
                artifact_config.snapshotPath = next();
            else if (arg == "--analysis")
                analysis_on = true;
            else if (arg == "--analysis-elide")
                analysis_on = analysis_elide = true;
            else if (arg == "--analysis-cert") {
                analysis_on = true;
                artifact_config.certificatePath = next();
            } else if (arg == "--analysis-paranoid")
                analysis_on = analysis_paranoid = true;
            else if (arg == "--no-validate-snapshot")
                artifact_config.validateSnapshot = false;
            else if (arg == "--no-precompile")
                artifact_config.precompile = false;
            else if (arg == "--no-template-tier")
                template_tier = false;
            else if (arg == "--interp-only")
                artifact_config.interpreterOnly = true;
            else if (arg == "--serial-check")
                serial_check = true;
            else if (arg == "--stats")
                want_stats = true;
            else if (arg == "--stats-json")
                stats_json = next();
            else if (arg == "--help" || arg == "-h") {
                std::cout << "usage: risotto-serve [options] image.riso\n"
                             "see the file header for options\n";
                return toolExitCode(ToolExit::Ok);
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option " + arg +
                      " (see risotto-serve --help)");
            } else if (!image_path.empty()) {
                fatal("more than one image given ('" + image_path +
                      "' and '" + arg + "'); see risotto-serve --help");
            } else {
                image_path = arg;
            }
        } catch (const Error &e) {
            std::cerr << "risotto-serve: " << e.what() << "\n";
            return toolExitCode(ToolExit::Usage);
        }
    }

    if (image_path.empty()) {
        std::cerr << "risotto-serve: no image given (produce one with "
                     "risotto-run --emit-demo)\n";
        return toolExitCode(ToolExit::Usage);
    }
    if (config.session.faults.rate == 0.0)
        config.session.faults.rate = 0.01;

    try {
        artifact_config.config = configByName(variant);
        artifact_config.config.host = host_isa;
        artifact_config.config.templateTier = template_tier;
        artifact_config.config.analysis = analysis_on;
        artifact_config.config.analysisElide = analysis_elide;
        artifact_config.config.analysisSkip =
            !artifact_config.certificatePath.empty();
        artifact_config.config.analysisParanoid = analysis_paranoid;
        // Certificate claims are statements about the validating
        // pipeline (the config fingerprint they key by includes this
        // flag), so consuming one means preparing under validation --
        // with the claimed blocks skipping it.
        if (artifact_config.config.analysisSkip ||
            artifact_config.config.analysisParanoid)
            artifact_config.config.validateTranslations = true;
        const serve::SharedArtifact artifact(gx86::loadImage(image_path),
                                             artifact_config);
        const auto &persist = artifact.persistReport();
        std::cout << "[risotto-serve] artifact mode="
                  << serve::artifactModeName(artifact.mode())
                  << " host=" << support::hostIsaName(host_isa)
                  << " blocks=" << artifact.cache().size();
        if (!artifact_config.snapshotPath.empty())
            std::cout << " snapshot-loaded=" << persist.loaded
                      << " snapshot-rejected=" << persist.rejected;
        std::cout << "\n";
        if (analysis_on)
            std::cout << "  analysis: local="
                      << artifact.stats().get("analysis.blocks_local")
                      << " ordered="
                      << artifact.stats().get("analysis.blocks_ordered")
                      << " hot=" << artifact.stats().get("analysis.blocks_hot")
                      << " cert-entries="
                      << artifact.stats().get("analysis.cert_entries")
                      << " validations-skipped="
                      << artifact.stats().get("analysis.validations_skipped")
                      << " paranoid-disagreements="
                      << artifact.stats().get(
                             "analysis.paranoid_disagreements")
                      << "\n";

        const serve::ServeReport report =
            serve::runSessions(artifact, config);

        std::vector<std::uint64_t> latencies;
        for (const serve::SessionResult &session : report.sessions) {
            if (session.kind == serve::FailureKind::Shed)
                continue;
            latencies.push_back(session.latency);
            if (session.kind != serve::FailureKind::None)
                std::cout << "  session " << session.id << ": "
                          << serve::failureKindName(session.kind)
                          << " after " << session.attempts
                          << " attempt(s)"
                          << (session.note.empty() ? ""
                                                   : " -- " + session.note)
                          << "\n";
        }

        std::cout << "[risotto-serve] sessions=" << config.sessions
                  << " admitted="
                  << report.stats.get("serve.sessions_admitted")
                  << " shed=" << report.shed
                  << " ok=" << report.succeeded
                  << " failed=" << report.failed
                  << " retries=" << report.stats.get("serve.retries")
                  << " recovered="
                  << report.stats.get("serve.recovered") << "\n";
        std::cout << "  dispatch: shared-hits="
                  << report.stats.get("serve.shared_hits")
                  << " shared-misses="
                  << report.stats.get("serve.shared_misses")
                  << " fallback-blocks="
                  << report.stats.get("serve.fallback_blocks")
                  << " dirty-pages="
                  << report.stats.get("serve.dirty_pages") << "\n";
        std::cout << "  latency: p50=" << latencyQuantile(latencies, 50)
                  << " p99=" << latencyQuantile(latencies, 99)
                  << " max=" << latencyQuantile(latencies, 100)
                  << " cycles (backoff="
                  << report.stats.get("serve.backoff_cycles") << ")\n";

        if (serial_check) {
            serve::ServeConfig serial = config;
            serial.jobs = 1;
            const serve::ServeReport reference =
                serve::runSessions(artifact, serial);
            for (std::size_t s = 0; s < report.sessions.size(); ++s) {
                const auto &got = report.sessions[s];
                const auto &want = reference.sessions[s];
                if (got.kind != want.kind ||
                    got.exitCodes != want.exitCodes ||
                    got.outputs != want.outputs) {
                    std::cerr << "risotto-serve: serial-check mismatch "
                                 "on session "
                              << s << " (parallel "
                              << serve::failureKindName(got.kind)
                              << " vs serial "
                              << serve::failureKindName(want.kind)
                              << ")\n";
                    return toolExitCode(ToolExit::RuntimeError);
                }
            }
            std::cout << "  serial-check: ok (" << report.sessions.size()
                      << " sessions bit-identical at jobs=1)\n";
        }

        if (want_stats)
            for (const auto &[name, value] : report.stats.all())
                std::cout << "  " << name << " = " << value << "\n";
        if (!stats_json.empty()) {
            // Key-sorted like the counters; host rides along as the one
            // string-valued key.
            std::map<std::string, std::string> merged;
            for (const auto &[name, value] : report.stats.all())
                merged[name] = std::to_string(value);
            merged["host"] =
                "\"" + support::hostIsaName(host_isa) + "\"";
            std::ofstream out(stats_json);
            fatalIf(!out, "cannot open " + stats_json + " for writing");
            out << "{\n";
            bool first = true;
            for (const auto &[name, value] : merged) {
                out << (first ? "" : ",\n") << "  \"" << name
                    << "\": " << value;
                first = false;
            }
            out << "\n}\n";
            fatalIf(!out, "write failed for " + stats_json);
        }

        if (report.stats.get(serve::failureKindStat(
                serve::FailureKind::ValidatorViolation)) > 0)
            return toolExitCode(ToolExit::ValidatorViolation);
        if (analysis_paranoid &&
            report.stats.get("analysis.paranoid_disagreements") > 0)
            return toolExitCode(ToolExit::ValidatorViolation);
        if (report.failed > 0)
            return toolExitCode(ToolExit::BudgetExhausted);
        return toolExitCode(ToolExit::Ok);
    } catch (const Error &e) {
        std::cerr << "risotto-serve: " << e.what() << "\n";
        return toolExitCode(ToolExit::RuntimeError);
    }
}
