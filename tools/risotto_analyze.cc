/**
 * @file
 * risotto-analyze: whole-image static weak-memory analysis driver.
 *
 * Runs the ahead-of-time analyzer over a guest image (or the built-in
 * corpus), prints the classification summary and the static findings
 * report, and optionally certifies the result: every analyzed block is
 * run through the real tier-1 pipeline and the obligation-graph
 * validator, and the blocks that pass are recorded as ClaimValidated
 * entries of a checksummed RACF certificate that risotto-run / serve
 * can consume to skip per-TB validation.
 *
 *   risotto-analyze [options] image.riso
 *   risotto-analyze --corpus [options]
 *
 *   --variant NAME    qemu | no-fences | tcg-ver | risotto (default)
 *   --host ISA        host backend: aarch | rv64 (default aarch);
 *                     certificates are keyed by it (a cert for one host
 *                     never vouches for the other's emitted code)
 *   --elide           certify the fence-eliding pipeline (the config
 *                     consumers must then run with --analysis-elide)
 *   --cert FILE       write the translation certificate to FILE
 *                     (single-image mode)
 *   --check FILE      audit an existing certificate: re-validate every
 *                     ClaimValidated entry; any disagreement exits 3
 *   --paranoid        certify, then immediately re-audit the fresh
 *                     certificate (the full differential); exits 3 on
 *                     any disagreement
 *   --corpus          sweep the built-in workload suite plus the litmus
 *                     x86 corpus instead of reading an image
 *   --jobs N          parallel certification workers (default: cores)
 *   --findings N      print at most N findings per image (default 10)
 *   --no-decode-cache analyze via the legacy GuestImage::decodeAt path
 *                     instead of the pre-decoded segment
 *   --stats           dump the aggregated analysis.* counters
 *   --stats-json PATH write them to PATH as stable key-sorted JSON
 *
 * Exit codes: 0 ok; 2 usage; 3 a certificate claim disagreed with the
 * validator (certify refusals are reported but are not failures --
 * blocks without claims simply keep full validation).
 */

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "dbt/certify.hh"
#include "dbt/config.hh"
#include "gx86/image.hh"
#include "gx86/imagefile.hh"
#include "litmus/library.hh"
#include "persist/fingerprint.hh"
#include "risotto/risotto.hh"
#include "support/checksum.hh"
#include "support/error.hh"
#include "support/hostisa.hh"
#include "workloads/litmusimage.hh"
#include "workloads/workloads.hh"

using namespace risotto;

namespace
{

dbt::DbtConfig
configByName(const std::string &name)
{
    if (name == "qemu")
        return dbt::DbtConfig::qemu();
    if (name == "no-fences")
        return dbt::DbtConfig::qemuNoFences();
    if (name == "tcg-ver")
        return dbt::DbtConfig::tcgVer();
    if (name == "risotto")
        return dbt::DbtConfig::risotto();
    fatal("unknown variant '" + name +
          "' (expected qemu|no-fences|tcg-ver|risotto)");
}

/** One image of the sweep. */
struct ImageJob
{
    std::string name;
    gx86::GuestImage image;
};

/** What to do and how; shared by single-image and corpus modes. */
struct AnalyzeOptions
{
    dbt::DbtConfig config;
    std::string certOut;   ///< --cert: write the certificate here.
    std::string checkPath; ///< --check: audit this certificate file.
    bool paranoid = false;
    std::size_t jobs = 0;
    std::size_t maxFindings = 10;
};

/** Aggregated counters across the sweep (all analysis.*-prefixed). */
using StatMap = std::map<std::string, std::uint64_t>;

/**
 * Analyze (and, when asked, certify / audit) one image.
 * @return false when a certificate claim disagreed with the validator.
 */
bool
analyzeOne(const ImageJob &job, const AnalyzeOptions &options,
           StatMap &stats)
{
    EmulatorOptions eo;
    eo.config = options.config;
    // The Emulator wires the linker exactly as risotto-run does, so
    // the analyzer sees the same segment the engine translates from.
    Emulator emulator(job.image, eo);
    const analysis::ImageAnalysis *ia = emulator.engine().analysis();
    fatalIf(ia == nullptr, "analysis did not run (internal)");

    std::cout << "[risotto-analyze] " << job.name << ": blocks="
              << ia->blocks.size() << " local=" << ia->blocksLocal
              << " ordered=" << ia->blocksOrdered
              << " hot=" << ia->blocksHot
              << " rsp-private=" << (ia->rspPrivate ? "yes" : "no")
              << " elidable-fences=" << ia->fencesElidable
              << " unreachable-islands=" << ia->unreachableIslands
              << "\n";
    for (std::size_t f = 0; f < ia->findings.size(); ++f) {
        if (f >= options.maxFindings) {
            std::cout << "  ... " << (ia->findings.size() - f)
                      << " more finding(s)\n";
            break;
        }
        std::cout << "  " << ia->findings[f].toString() << "\n";
    }

    stats["analysis.images"] += 1;
    stats["analysis.blocks_local"] += ia->blocksLocal;
    stats["analysis.blocks_ordered"] += ia->blocksOrdered;
    stats["analysis.blocks_hot"] += ia->blocksHot;
    stats["analysis.rsp_private"] += ia->rspPrivate ? 1 : 0;
    stats["analysis.fences_elidable"] += ia->fencesElidable;
    stats["analysis.findings"] += ia->findings.size();
    stats["analysis.unreachable_islands"] += ia->unreachableIslands;

    const gx86::DecodedSegment *segment =
        emulator.engine().segment().get();
    bool ok = true;

    const bool certify =
        !options.certOut.empty() || options.paranoid;
    analysis::Certificate cert;
    if (certify) {
        dbt::CertifyReport report;
        cert = dbt::certifyImage(job.image, options.config, *ia,
                                 segment, report, options.jobs);
        std::cout << "  certify: entries=" << report.blocksCertified
                  << " validated=" << report.blocksValidated
                  << " refused=" << report.blocksFailed
                  << " untranslatable=" << report.blocksUntranslatable
                  << " pairs=" << report.pairsChecked
                  << " discharged-local="
                  << report.pairsDischargedLocal << "\n";
        stats["analysis.cert_entries"] += report.blocksCertified;
        stats["analysis.cert_validated"] += report.blocksValidated;
        stats["analysis.cert_refused"] += report.blocksFailed;
        stats["analysis.cert_untranslatable"] +=
            report.blocksUntranslatable;
        stats["analysis.pairs_checked"] += report.pairsChecked;
        stats["analysis.pairs_discharged_local"] +=
            report.pairsDischargedLocal;
        if (!options.certOut.empty()) {
            support::writeFileBytes(options.certOut,
                                    analysis::serializeCertificate(cert));
            std::cout << "  certificate written to " << options.certOut
                      << " (" << cert.validatedCount()
                      << " validated claim(s))\n";
        }
    }

    const bool audit = !options.checkPath.empty() || options.paranoid;
    if (audit) {
        if (!options.checkPath.empty()) {
            std::string error;
            fatalIf(!analysis::parseCertificate(
                        support::readFileBytes(options.checkPath), cert,
                        &error),
                    "cannot parse certificate " + options.checkPath +
                        ": " + error);
            fatalIf(!analysis::certificateMatches(
                        cert, persist::imageDigest(job.image),
                        persist::configFingerprint(options.config)),
                    "certificate " + options.checkPath +
                        " is for a different image or config");
        }
        const dbt::CertifyReport report = dbt::auditCertificate(
            job.image, options.config, *ia, segment, cert,
            options.jobs);
        std::cout << "  audit: claims=" << report.blocksValidated +
                         report.blocksFailed
                  << " revalidated=" << report.blocksValidated
                  << " disagreements=" << report.blocksFailed << "\n";
        stats["analysis.paranoid_rechecks"] +=
            report.blocksValidated + report.blocksFailed;
        stats["analysis.paranoid_disagreements"] += report.blocksFailed;
        if (report.blocksFailed > 0) {
            std::cerr << "risotto-analyze: " << report.blocksFailed
                      << " certificate claim(s) disagreed with the "
                         "validator on "
                      << job.name << "\n";
            ok = false;
        }
    }
    return ok;
}

/** The built-in corpus: every workload proxy + the litmus x86 tests. */
std::vector<ImageJob>
corpusJobs()
{
    std::vector<ImageJob> jobs;
    for (const workloads::WorkloadSpec &spec : workloads::fullSuite())
        jobs.push_back({spec.suite + "/" + spec.name,
                        workloads::buildGuestWorkload(spec)});
    for (const litmus::LitmusTest &test : litmus::x86Corpus())
        jobs.push_back({"litmus/" + test.program.name,
                        workloads::litmusGuestImage(test.program)});
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string image_path;
    std::string variant = "risotto";
    support::HostIsa host_isa = support::HostIsa::Aarch;
    AnalyzeOptions options;
    bool corpus = false;
    bool elide = false;
    bool decode_cache = true;
    bool want_stats = false;
    std::string stats_json;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for " + arg);
            return argv[i];
        };
        auto nextU64 = [&]() -> std::uint64_t {
            const std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("invalid number '" + v + "' for " + arg);
            }
        };
        try {
            if (arg == "--variant")
                variant = next();
            else if (arg == "--host") {
                const std::string v = next();
                const auto parsed = support::parseHostIsa(v);
                fatalIf(!parsed, "unknown host '" + v +
                                     "' (expected aarch|rv64)");
                host_isa = *parsed;
            } else if (arg == "--elide")
                elide = true;
            else if (arg == "--cert")
                options.certOut = next();
            else if (arg == "--check")
                options.checkPath = next();
            else if (arg == "--paranoid")
                options.paranoid = true;
            else if (arg == "--corpus")
                corpus = true;
            else if (arg == "--jobs")
                options.jobs = static_cast<std::size_t>(nextU64());
            else if (arg == "--findings")
                options.maxFindings =
                    static_cast<std::size_t>(nextU64());
            else if (arg == "--no-decode-cache")
                decode_cache = false;
            else if (arg == "--stats")
                want_stats = true;
            else if (arg == "--stats-json")
                stats_json = next();
            else if (arg == "--help" || arg == "-h") {
                std::cout
                    << "usage: risotto-analyze [options] image.riso\n"
                       "       risotto-analyze --corpus [options]\n"
                       "see the file header for options\n";
                return toolExitCode(ToolExit::Ok);
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option " + arg +
                      " (see risotto-analyze --help)");
            } else if (!image_path.empty()) {
                fatal("more than one image given ('" + image_path +
                      "' and '" + arg + "')");
            } else {
                image_path = arg;
            }
        } catch (const Error &e) {
            std::cerr << "risotto-analyze: " << e.what() << "\n";
            return toolExitCode(ToolExit::Usage);
        }
    }

    if (!corpus && image_path.empty()) {
        std::cerr << "risotto-analyze: no image given (or use "
                     "--corpus)\n";
        return toolExitCode(ToolExit::Usage);
    }
    if (corpus && !image_path.empty()) {
        std::cerr << "risotto-analyze: --corpus takes no image\n";
        return toolExitCode(ToolExit::Usage);
    }
    if (corpus && !options.certOut.empty()) {
        std::cerr << "risotto-analyze: --cert needs a single image\n";
        return toolExitCode(ToolExit::Usage);
    }
    if (corpus && !options.checkPath.empty()) {
        std::cerr << "risotto-analyze: --check needs a single image\n";
        return toolExitCode(ToolExit::Usage);
    }

    try {
        options.config = configByName(variant);
        options.config.host = host_isa;
        options.config.analysis = true;
        options.config.analysisElide = elide;
        options.config.decodeCache = decode_cache;
        // A certificate is a claim about the *validating* pipeline, and
        // the config fingerprint it is keyed by covers this flag: the
        // consumers that can use the claims (--analysis-cert with
        // --validate) run with it on.
        options.config.validateTranslations = true;

        std::vector<ImageJob> jobs;
        if (corpus)
            jobs = corpusJobs();
        else
            jobs.push_back({image_path, gx86::loadImage(image_path)});

        StatMap stats;
        bool ok = true;
        for (const ImageJob &job : jobs)
            ok = analyzeOne(job, options, stats) && ok;

        if (jobs.size() > 1)
            std::cout << "[risotto-analyze] corpus: images="
                      << stats["analysis.images"] << " local="
                      << stats["analysis.blocks_local"] << " ordered="
                      << stats["analysis.blocks_ordered"] << " hot="
                      << stats["analysis.blocks_hot"]
                      << " paranoid-disagreements="
                      << stats["analysis.paranoid_disagreements"]
                      << "\n";
        if (want_stats)
            for (const auto &[name, value] : stats)
                std::cout << "  " << name << " = " << value << "\n";
        if (!stats_json.empty()) {
            std::map<std::string, std::string> merged;
            for (const auto &[name, value] : stats)
                merged[name] = std::to_string(value);
            merged["host"] =
                "\"" + support::hostIsaName(host_isa) + "\"";
            std::ofstream out(stats_json);
            fatalIf(!out, "cannot open " + stats_json + " for writing");
            out << "{\n";
            bool first = true;
            for (const auto &[name, value] : merged) {
                out << (first ? "" : ",\n") << "  \"" << name
                    << "\": " << value;
                first = false;
            }
            out << "\n}\n";
            fatalIf(!out, "write failed for " + stats_json);
        }

        return toolExitCode(ok ? ToolExit::Ok
                               : ToolExit::ValidatorViolation);
    } catch (const Error &e) {
        std::cerr << "risotto-analyze: " << e.what() << "\n";
        return toolExitCode(ToolExit::RuntimeError);
    }
}
