/**
 * @file
 * risotto-litmus: the herd/litmus-style checking tool.
 *
 *   risotto-litmus [options] [test.litmus ...]
 *
 * With no files, checks the built-in corpus. For each test:
 *   - enumerates behaviours under x86-TSO (and reports the interesting
 *     outcome's status),
 *   - checks Theorem-1 refinement for the QEMU and Risotto pipelines
 *     under Arm-Cats (corrected),
 *   - with --stress, additionally runs the test end-to-end through the
 *     DBT on the randomized weak-memory machine.
 *
 * Options:
 *   --model NAME   x86 | tcg | arm | arm-orig | sc  (enumeration model)
 *   --stress       also run operationally (x86-flavoured tests only)
 *   --schedules N  stress schedules (default 200)
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "litmus/parser.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "risotto/stress.hh"
#include "support/error.hh"

using namespace risotto;
using namespace risotto::litmus;

namespace
{

const models::ScModel kSc;
const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);
const models::ArmModel kArmOrig(models::ArmModel::AmoRule::Original);

const models::ConsistencyModel &
modelByName(const std::string &name)
{
    if (name == "x86")
        return kX86;
    if (name == "tcg")
        return kTcg;
    if (name == "arm")
        return kArm;
    if (name == "arm-orig")
        return kArmOrig;
    if (name == "sc")
        return kSc;
    fatal("unknown model '" + name + "'");
}

void
check(const LitmusTest &test, const models::ConsistencyModel &model,
      bool stress, std::uint64_t schedules)
{
    std::cout << "=== " << test.program.name << " (model "
              << model.name() << ") ===\n";
    EnumerateStats stats;
    const BehaviorSet behaviors =
        enumerateBehaviors(test.program, model, &stats);
    std::cout << behaviors.size() << " behaviours ("
              << stats.consistent << " consistent executions):\n";
    for (const Outcome &o : behaviors)
        std::cout << "  " << o.toString() << "\n";
    const bool observed = test.interesting.existsIn(behaviors);
    std::cout << "condition " << test.interesting.toString() << ": "
              << (observed ? "ALLOWED" : "forbidden");
    if (test.forbiddenInSource && observed)
        std::cout << "  ** expected forbidden! **";
    std::cout << "\n";

    // Theorem 1 for the two pipelines.
    const mapping::RmwLowering lowerings[] = {
        mapping::RmwLowering::HelperRmw1AL,
        mapping::RmwLowering::InlineCasal};
    const char *labels[] = {"qemu", "risotto"};
    const mapping::X86ToTcgScheme fronts[] = {
        mapping::X86ToTcgScheme::Qemu, mapping::X86ToTcgScheme::Risotto};
    const mapping::TcgToArmScheme backs[] = {
        mapping::TcgToArmScheme::Qemu, mapping::TcgToArmScheme::Risotto};
    for (int p = 0; p < 2; ++p) {
        const Program arm = mapping::mapX86ToArm(test.program, fronts[p],
                                                 backs[p], lowerings[p]);
        const auto result = checkRefinement(test.program, kX86, arm, kArm);
        std::cout << "  " << labels[p] << " pipeline: "
                  << (result.correct ? "refines" : "REFINEMENT VIOLATED")
                  << "\n";
    }

    if (stress) {
        for (const auto *label : {"no-fences", "risotto"}) {
            const auto config = std::string(label) == "risotto"
                                    ? dbt::DbtConfig::risotto()
                                    : dbt::DbtConfig::qemuNoFences();
            const StressResult result =
                runStress(test.program, config, schedules);
            std::cout << "  stress under " << label << " ("
                      << result.runs() << " runs):\n";
            std::istringstream lines(result.toString());
            std::string line;
            while (std::getline(lines, line))
                std::cout << "    " << line << "\n";
        }
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "x86";
    bool stress = false;
    std::uint64_t schedules = 200;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for " + arg);
            return argv[i];
        };
        try {
            if (arg == "--model")
                model_name = next();
            else if (arg == "--stress")
                stress = true;
            else if (arg == "--schedules") {
                const std::string v = next();
                try {
                    schedules = std::stoull(v);
                } catch (const std::exception &) {
                    fatal("invalid number '" + v + "' for " + arg);
                }
            }
            else if (arg == "--help" || arg == "-h") {
                std::cout << "usage: risotto-litmus [options] "
                             "[test.litmus ...]\n";
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option " + arg +
                      " (see risotto-litmus --help)");
            } else {
                files.push_back(arg);
            }
        } catch (const Error &e) {
            std::cerr << "risotto-litmus: " << e.what() << "\n";
            return 1;
        }
    }

    try {
        const models::ConsistencyModel &model = modelByName(model_name);
        if (files.empty()) {
            for (const LitmusTest &test : x86Corpus())
                check(test, model, stress, schedules);
            return 0;
        }
        for (const std::string &path : files) {
            std::ifstream in(path);
            fatalIf(!in, "cannot open " + path);
            std::stringstream buffer;
            buffer << in.rdbuf();
            check(parseLitmus(buffer.str()), model, stress, schedules);
        }
        return 0;
    } catch (const Error &e) {
        std::cerr << "risotto-litmus: " << e.what() << "\n";
        return 1;
    }
}
