/**
 * @file
 * risotto-litmus: the herd/litmus-style checking tool.
 *
 *   risotto-litmus [options] [test.litmus ...]
 *
 * With no files, checks the built-in corpus. For each test:
 *   - enumerates behaviours under x86-TSO (and reports the interesting
 *     outcome's status),
 *   - checks Theorem-1 refinement for the QEMU and Risotto pipelines
 *     under Arm-Cats (corrected),
 *   - with --stress, additionally runs the test end-to-end through the
 *     DBT on the randomized weak-memory machine.
 *
 * Options:
 *   --model NAME   x86 | tcg | arm | arm-orig | sc  (enumeration model)
 *   --stress       also run operationally (x86-flavoured tests only)
 *   --host ISA     host backend the --stress runs translate for:
 *                  aarch | rv64 (default aarch)
 *   --schedules N  stress schedules (default 200)
 *   --jobs N       worker threads (default: hardware concurrency);
 *                  multiple tests check in parallel, reported in order
 */

#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <vector>

#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "litmus/parser.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "risotto/stress.hh"
#include "support/error.hh"
#include "support/hostisa.hh"
#include "support/threadpool.hh"

using namespace risotto;
using namespace risotto::litmus;

namespace
{

const models::ScModel kSc;
const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);
const models::ArmModel kArmOrig(models::ArmModel::AmoRule::Original);

const models::ConsistencyModel &
modelByName(const std::string &name)
{
    if (name == "x86")
        return kX86;
    if (name == "tcg")
        return kTcg;
    if (name == "arm")
        return kArm;
    if (name == "arm-orig")
        return kArmOrig;
    if (name == "sc")
        return kSc;
    fatal("unknown model '" + name + "'");
}

void
check(const LitmusTest &test, const models::ConsistencyModel &model,
      bool stress, support::HostIsa host, std::uint64_t schedules,
      const EnumerateOptions &eopts, std::ostream &out)
{
    out << "=== " << test.program.name << " (model "
        << model.name() << ") ===\n";
    EnumerateStats stats;
    const BehaviorSet behaviors =
        enumerateBehaviors(test.program, model, &stats, eopts);
    out << behaviors.size() << " behaviours ("
        << stats.consistent << " consistent executions):\n";
    for (const Outcome &o : behaviors)
        out << "  " << o.toString() << "\n";
    const bool observed = test.interesting.existsIn(behaviors);
    out << "condition " << test.interesting.toString() << ": "
        << (observed ? "ALLOWED" : "forbidden");
    if (test.forbiddenInSource && observed)
        out << "  ** expected forbidden! **";
    out << "\n";

    // Theorem 1 for the two pipelines.
    const mapping::RmwLowering lowerings[] = {
        mapping::RmwLowering::HelperRmw1AL,
        mapping::RmwLowering::InlineCasal};
    const char *labels[] = {"qemu", "risotto"};
    const mapping::X86ToTcgScheme fronts[] = {
        mapping::X86ToTcgScheme::Qemu, mapping::X86ToTcgScheme::Risotto};
    const mapping::TcgToArmScheme backs[] = {
        mapping::TcgToArmScheme::Qemu, mapping::TcgToArmScheme::Risotto};
    for (int p = 0; p < 2; ++p) {
        const Program arm = mapping::mapX86ToArm(test.program, fronts[p],
                                                 backs[p], lowerings[p]);
        const auto result = checkRefinement(test.program, kX86, arm, kArm);
        out << "  " << labels[p] << " pipeline: "
            << (result.correct ? "refines" : "REFINEMENT VIOLATED")
            << "\n";
    }

    if (stress) {
        for (const auto *label : {"no-fences", "risotto"}) {
            auto config = std::string(label) == "risotto"
                              ? dbt::DbtConfig::risotto()
                              : dbt::DbtConfig::qemuNoFences();
            config.host = host;
            const StressResult result =
                runStress(test.program, config, schedules);
            out << "  stress under " << label << " ("
                << result.runs() << " runs):\n";
            std::istringstream lines(result.toString());
            std::string line;
            while (std::getline(lines, line))
                out << "    " << line << "\n";
        }
    }
    out << "\n";
}

/**
 * Check every test, fanning out over the pool when it has more than one
 * worker and more than one test. Each test writes to its own buffer and
 * the buffers print in corpus order, so the report is byte-identical at
 * any job count; a lone test instead parallelizes its enumeration.
 */
void
checkAll(const std::vector<LitmusTest> &tests,
         const models::ConsistencyModel &model, bool stress,
         support::HostIsa host, std::uint64_t schedules,
         support::ThreadPool &pool)
{
    if (pool.jobs() <= 1 || tests.size() <= 1) {
        EnumerateOptions eopts;
        eopts.pool = &pool; // Within-test parallelism for a lone test.
        for (const LitmusTest &test : tests)
            check(test, model, stress, host, schedules, eopts,
                  std::cout);
        return;
    }
    std::vector<std::ostringstream> reports(tests.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(tests.size());
    for (std::size_t i = 0; i < tests.size(); ++i)
        tasks.push_back([&, i] {
            // Tests are the unit of parallelism here; their enumerations
            // stay serial (the pool cannot be re-entered from a task).
            check(tests[i], model, stress, host, schedules,
                  EnumerateOptions{}, reports[i]);
        });
    pool.run(std::move(tasks));
    for (const std::ostringstream &report : reports)
        std::cout << report.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "x86";
    bool stress = false;
    support::HostIsa host_isa = support::HostIsa::Aarch;
    std::uint64_t schedules = 200;
    std::size_t jobs = 0; // 0: hardware concurrency.
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for " + arg);
            return argv[i];
        };
        try {
            if (arg == "--model")
                model_name = next();
            else if (arg == "--stress")
                stress = true;
            else if (arg == "--host") {
                const std::string v = next();
                const auto parsed = support::parseHostIsa(v);
                fatalIf(!parsed, "unknown host '" + v +
                                     "' (expected aarch|rv64)");
                host_isa = *parsed;
            } else if (arg == "--schedules") {
                const std::string v = next();
                try {
                    schedules = std::stoull(v);
                } catch (const std::exception &) {
                    fatal("invalid number '" + v + "' for " + arg);
                }
            }
            else if (arg == "--jobs") {
                const std::string v = next();
                try {
                    jobs = std::stoull(v);
                } catch (const std::exception &) {
                    fatal("invalid number '" + v + "' for " + arg);
                }
            }
            else if (arg == "--help" || arg == "-h") {
                std::cout << "usage: risotto-litmus [options] "
                             "[test.litmus ...]\n";
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option " + arg +
                      " (see risotto-litmus --help)");
            } else {
                files.push_back(arg);
            }
        } catch (const Error &e) {
            std::cerr << "risotto-litmus: " << e.what() << "\n";
            return toolExitCode(ToolExit::Usage);
        }
    }

    try {
        const models::ConsistencyModel &model = modelByName(model_name);
        support::ThreadPool pool(jobs);
        std::vector<LitmusTest> tests;
        if (files.empty()) {
            tests = x86Corpus();
        } else {
            for (const std::string &path : files) {
                std::ifstream in(path);
                fatalIf(!in, "cannot open " + path);
                std::stringstream buffer;
                buffer << in.rdbuf();
                tests.push_back(parseLitmus(buffer.str()));
            }
        }
        checkAll(tests, model, stress, host_isa, schedules, pool);
        return toolExitCode(ToolExit::Ok);
    } catch (const Error &e) {
        std::cerr << "risotto-litmus: " << e.what() << "\n";
        return toolExitCode(ToolExit::RuntimeError);
    }
}
