/**
 * @file
 * Figure 13: speed-up of OpenSSL-style digests/RSA and the sqlite
 * speedtest with the dynamic host linker (risotto) and native execution,
 * against QEMU translating the guest library. Higher is better; raw
 * throughput in ops/s.
 */

#include <iostream>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "hostlib/hostlib.hh"
#include "linker/hostlinker.hh"
#include "linker/idl.hh"
#include "machine/machine.hh"
#include "support/error.hh"
#include "support/format.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::gx86;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

/** One library benchmark: calls `fn(args)` in a loop `calls` times. */
struct LibBench
{
    std::string label;
    std::string fn;
    std::uint64_t arg1 = 0; ///< For digests: buffer length; rsa: iters.
    std::uint64_t calls = 20;
    bool digest = false;    ///< arg0 = buffer pointer when true.
    bool sqlite = false;
};

/** Build the guest program looping over the library call. */
GuestImage
buildImage(const LibBench &bench)
{
    Assembler a;
    const Addr buf =
        bench.digest ? a.dataReserve(bench.arg1 ? bench.arg1 : 8) : 0;
    const std::size_t table_len = 4096;
    Addr table = 0;
    if (bench.sqlite) {
        table = a.dataReserve(table_len * 8);
    }
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    hostlib::emitGuestCryptoLibrary(a);
    hostlib::emitGuestSqliteLibrary(a);
    a.bind(start);
    if (bench.sqlite) {
        // Sorted table: table[i] = 2*i.
        a.movri(4, static_cast<std::int64_t>(table));
        a.movri(5, 0);
        a.movri(6, static_cast<std::int64_t>(table_len));
        const auto fill = a.newLabel();
        a.bind(fill);
        a.store(4, 0, 5);
        a.addi(4, 8);
        a.addi(5, 2);
        a.subi(6, 1);
        a.cmpri(6, 0);
        a.jcc(Cond::Gt, fill);
    }
    a.movri(14, static_cast<std::int64_t>(bench.calls));
    const auto loop = a.newLabel();
    a.bind(loop);
    if (bench.sqlite) {
        a.movri(1, static_cast<std::int64_t>(table));
        a.movri(2, static_cast<std::int64_t>(table_len));
        a.movri(3, 32); // lookups per "query"
        a.movrr(4, 14); // seed varies per call
    } else if (bench.digest) {
        a.movri(1, static_cast<std::int64_t>(buf));
        a.movri(2, static_cast<std::int64_t>(bench.arg1));
    } else {
        a.movri(1, 0x1234567);
        a.movri(2, static_cast<std::int64_t>(bench.arg1));
    }
    a.callImport(bench.fn);
    a.subi(14, 1);
    a.cmpri(14, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

std::uint64_t
runQemu(const GuestImage &image)
{
    // QEMU: translate the guest library.
    Dbt engine(image, DbtConfig::qemu());
    const auto result = engine.run({ThreadSpec{}});
    fatalIf(!result.finished, "qemu run did not finish");
    return result.makespan;
}

std::uint64_t
runRisotto(const GuestImage &image, linker::HostLinker &linker)
{
    linker.scanImage(image);
    Dbt engine(image, DbtConfig::risotto(), &linker, &linker);
    const auto result = engine.run({ThreadSpec{}});
    fatalIf(!result.finished, "risotto run did not finish");
    return result.makespan;
}

/**
 * Native: an Arm binary calling the host library directly -- modeled as
 * the native function body plus a plain call, no marshalling.
 */
std::uint64_t
runNative(const LibBench &bench,
          const linker::HostLibraryRegistry &registry)
{
    gx86::Memory memory;
    std::vector<std::uint64_t> args;
    std::uint64_t total = 0;
    const std::size_t table_len = 4096;
    if (bench.sqlite) {
        for (std::size_t i = 0; i < table_len; ++i)
            memory.store64(0x400000 + i * 8, 2 * i);
    }
    for (std::uint64_t c = 0; c < bench.calls; ++c) {
        args.clear();
        if (bench.sqlite) {
            args = {0x400000, table_len, 32, c};
        } else if (bench.digest) {
            args = {0x400000, bench.arg1};
        } else {
            args = {0x1234567, bench.arg1};
        }
        std::uint64_t body = 0;
        registry.lookup(bench.fn)(args, memory, body);
        total += body + 8; // Plain BL/RET pair.
    }
    return total;
}

} // namespace

int
main()
{
    std::cout << "Figure 13: OpenSSL/sqlite speed-up vs QEMU "
                 "(higher is better)\n\n";

    linker::HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);
    linker::HostLinker linker(linker::parseIdl(hostlib::fullIdl()),
                              registry);

    ReportTable table("Speed-up w.r.t. QEMU",
                      {"benchmark", "qemu[ops/s]", "risotto", "native"});

    auto row = [&](const LibBench &bench) {
        const GuestImage image = buildImage(bench);
        const std::uint64_t qemu = runQemu(image);
        const std::uint64_t risotto = runRisotto(image, linker);
        const std::uint64_t native = runNative(bench, registry);
        table.addRow({bench.label,
                      fixedString(opsPerSecond(bench.calls, qemu), 0),
                      fixedString(static_cast<double>(qemu) / risotto, 1),
                      fixedString(static_cast<double>(qemu) / native, 1)});
    };

    row({"md5-1024", "md5", 1024, 30, true, false});
    row({"md5-8192", "md5", 8192, 20, true, false});
    row({"rsa1024-sign", "rsa_sign", 1024, 10, false, false});
    row({"rsa1024-verify", "rsa_verify", 1024, 30, false, false});
    row({"rsa2048-sign", "rsa_sign", 2048, 6, false, false});
    row({"rsa2048-verify", "rsa_verify", 2048, 30, false, false});
    row({"sha1-1024", "sha1", 1024, 30, true, false});
    row({"sha1-8192", "sha1", 8192, 20, true, false});
    row({"sha256-1024", "sha256", 1024, 30, true, false});
    row({"sha256-8192", "sha256", 8192, 20, true, false});
    row({"sqlite", "sqlite_exec", 0, 40, false, true});
    show(table);

    std::cout << "Paper shape: speed-ups from ~1.4x (md5-1024) to ~23x "
                 "(sha256-8192); risotto matches native for "
                 "long-running calls.\n";
    return 0;
}
