/**
 * @file
 * Static-analysis table: cold translation time-to-first-dispatch with
 * and without an ahead-of-time translation certificate.
 *
 * Cold start pays the per-TB obligation-graph validator on every block
 * it translates. risotto-analyze moves that cost offline: certifyImage
 * runs the same pipeline + validator ahead of time and records the
 * blocks that passed as ClaimValidated certificate entries, which a
 * consumer engine may trust instead of re-validating (superblocks are
 * never certificate-skipped). This bench measures the consumer side
 * (host wall-clock, like tab_dispatch):
 *
 *  - validated:  cold engine, full per-TB validation (the baseline),
 *  - certified:  cold engine + certificate, claims skip validation.
 *
 * Certificate production itself is reported separately (the offline
 * cost the certificate amortizes across restarts and fleet members).
 * Both modes must produce bit-identical guest results. Headline
 * acceptance bar: the certified cold start reaches first dispatch at
 * least 1.3x faster than the validated one (hard outside --smoke).
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/certificate.hh"
#include "bench/common.hh"
#include "dbt/certify.hh"
#include "dbt/frontend.hh"
#include "gx86/assembler.hh"
#include "persist/fingerprint.hh"
#include "risotto/risotto.hh"
#include "support/error.hh"

using namespace risotto;
using namespace risotto::bench;

namespace
{

double
nsBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::nano>(b - a).count();
}

/**
 * A translation-heavy image: @p funcs small functions, mixing
 * stack-local frames (Local blocks the analyzer discharges) with
 * shared-region traffic (Ordered blocks), all called once from main.
 * Every call/ret seam is a block boundary, so the cold sweep
 * translates and validates O(funcs) distinct blocks.
 */
gx86::GuestImage
analyzeWorkload(std::size_t funcs)
{
    gx86::Assembler a;
    const gx86::Addr shared = a.dataReserve(4096);
    a.defineSymbol("main");
    const auto start = a.newLabel();
    a.jmp(start);

    std::vector<gx86::Assembler::Label> entries;
    for (std::size_t f = 0; f < funcs; ++f) {
        entries.push_back(a.newLabel());
        a.bind(entries.back());
        if (f % 3 != 0) {
            // A stack-local leaf: frame push, private traffic, pop.
            a.subi(15, 32);
            a.store(15, 0, 1);
            a.store(15, 8, 2);
            a.addi(1, static_cast<std::int32_t>(f));
            a.load(2, 15, 0);
            a.xor_(1, 2);
            a.load(2, 15, 8);
            a.addi(15, 32);
        } else {
            // Shared-region traffic keeps a share of Ordered blocks.
            a.movri(5, static_cast<std::int64_t>(shared));
            a.load(2, 5, static_cast<std::int32_t>((f * 8) % 4096));
            a.add(1, 2);
            a.store(5, static_cast<std::int32_t>((f * 8) % 4096), 1);
        }
        a.ret();
    }

    a.bind(start);
    a.movri(1, 1);
    for (const auto entry : entries)
        a.call(entry);
    a.andi(1, 0xff);
    a.movri(0, 0);
    a.syscall();
    return a.finish("main");
}

struct Measurement
{
    double coldNs = 0.0; ///< Engine build + full reachable sweep.
    std::uint64_t blocks = 0;
    std::uint64_t skipped = 0;
    dbt::RunResult result;
};

/** One cold start: engine construction plus the reachable-block
 * translation sweep (the artifact's time-to-first-dispatch), then an
 * untimed run for the bit-identity check. */
Measurement
measureCold(const gx86::GuestImage &image, const dbt::DbtConfig &config,
            const analysis::Certificate *cert, std::size_t reps)
{
    Measurement best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        EmulatorOptions options;
        options.config = config;
        const auto t0 = std::chrono::steady_clock::now();
        Emulator emulator(image, options);
        if (cert != nullptr)
            fatalIf(!emulator.engine().setCertificate(*cert),
                    "certificate rejected by the consumer engine");
        std::vector<gx86::Addr> heads = dbt::reachableBlocks(
            image, config, emulator.engine().segment().get());
        for (const gx86::Addr head : heads)
            emulator.engine().lookupOrTranslate(head);
        const auto t1 = std::chrono::steady_clock::now();
        const double ns = nsBetween(t0, t1);
        if (rep == 0 || ns < best.coldNs) {
            best.coldNs = ns;
            best.blocks = heads.size();
            best.skipped = emulator.engine().stats().get(
                "analysis.validations_skipped");
            best.result = emulator.run();
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    const std::size_t funcs = smoke ? 48 : 384;
    const std::size_t reps = smoke ? 2 : 5;
    const gx86::GuestImage image = analyzeWorkload(funcs);

    dbt::DbtConfig config = dbt::DbtConfig::risotto();
    config.validateTranslations = true;
    config.analysis = true;

    // Offline: analyze + certify once (the producer side).
    EmulatorOptions producer_options;
    producer_options.config = config;
    Emulator producer(image, producer_options);
    fatalIf(producer.engine().analysis() == nullptr,
            "analysis did not run");
    dbt::CertifyReport certify_report;
    const auto c0 = std::chrono::steady_clock::now();
    const analysis::Certificate cert = dbt::certifyImage(
        image, config, *producer.engine().analysis(),
        producer.engine().segment().get(), certify_report);
    const auto c1 = std::chrono::steady_clock::now();
    const double certify_ns = nsBetween(c0, c1);
    fatalIf(certify_report.blocksValidated == 0,
            "certificate carries no validated claims");

    // Consumer side: cold start without and with the certificate.
    const Measurement validated = measureCold(image, config, nullptr,
                                              reps);
    dbt::DbtConfig skip_config = config;
    skip_config.analysisSkip = true;
    const Measurement certified = measureCold(image, skip_config, &cert,
                                              reps);

    fatalIf(certified.result.outputs != validated.result.outputs ||
                certified.result.exitCodes != validated.result.exitCodes,
            "certified cold start diverged from the validated one");
    fatalIf(certified.skipped == 0,
            "certificate claims skipped no validations");

    const double speedup = validated.coldNs / certified.coldNs;
    ReportTable table("Cold translation time-to-first-dispatch: full "
                      "validation vs certificate",
                      {"mode", "blocks", "skipped", "cold ms",
                       "vs validated"});
    const auto row = [&](const std::string &name, const Measurement &m) {
        char ms[32];
        std::snprintf(ms, sizeof ms, "%.2f", m.coldNs / 1e6);
        char rel[32];
        std::snprintf(rel, sizeof rel, "%.2fx",
                      validated.coldNs / m.coldNs);
        table.addRow({name, std::to_string(m.blocks),
                      std::to_string(m.skipped), ms, rel});
    };
    row("validated", validated);
    row("certified", certified);
    show(table);

    ReportTable offline("Certificate production (offline, amortized)",
                        {"entries", "validated", "refused", "ms"});
    char cms[32];
    std::snprintf(cms, sizeof cms, "%.2f", certify_ns / 1e6);
    offline.addRow({std::to_string(certify_report.blocksCertified),
                    std::to_string(certify_report.blocksValidated),
                    std::to_string(certify_report.blocksFailed), cms});
    show(offline);

    BenchJsonEntry entry;
    entry.name = "BM_ColdStart_validated";
    entry.nsPerOp = validated.coldNs;
    entry.configFingerprint = persist::configFingerprint(config);
    entry.timeToFirstDispatchNs = validated.coldNs;
    json.push_back(entry);
    entry.name = "BM_ColdStart_certified";
    entry.nsPerOp = certified.coldNs;
    entry.configFingerprint = persist::configFingerprint(skip_config);
    entry.timeToFirstDispatchNs = certified.coldNs;
    json.push_back(entry);
    entry.name = "BM_CertifyImage";
    entry.nsPerOp = certify_ns;
    entry.configFingerprint = persist::configFingerprint(config);
    entry.timeToFirstDispatchNs = 0.0;
    json.push_back(entry);
    writeBenchJson(json_path, json);

    std::cout << "certified cold-start speedup vs validated: " << speedup
              << "x (bar: 1.3x)\n";
    if (!smoke && speedup < 1.3) {
        std::cerr << "tab_analyze: certificate-driven cold start did "
                     "not reach the 1.3x bar\n";
        return 1;
    }
    return 0;
}
