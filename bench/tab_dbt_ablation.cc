/**
 * @file
 * DBT-mechanism ablations (beyond the paper's figures, for the design
 * choices DESIGN.md calls out):
 *  - block chaining on/off: dispatcher round-trips vs patched direct
 *    branches on a hot loop,
 *  - the whole optimizer on/off: IR ops and cycles with and without
 *    constant folding + eliminations + merging,
 *  - CAS path (D3): helper call vs inline casal vs fenced RMW2 on an
 *    uncontended atomic loop.
 */

#include <iostream>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"
#include "support/format.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::gx86;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

GuestImage
hotLoop()
{
    Assembler a;
    const Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(1, 0);
    a.movri(2, 3000);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.load(4, 3, 0);
    a.add(1, 4);
    a.store(3, 8, 1);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

GuestImage
casLoop()
{
    Assembler a;
    const Addr cell = a.dataQuad(0);
    a.defineSymbol("main");
    a.movri(4, static_cast<std::int64_t>(cell));
    a.movri(2, 1500);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.load(0, 4, 0);
    a.movrr(6, 0);
    a.addi(6, 1);
    a.lockCmpxchg(4, 0, 6);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

dbt::RunResult
run(const GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    auto result = engine.run({ThreadSpec{}});
    fatalIf(!result.finished, "ablation run did not finish");
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    std::cout << "DBT mechanism ablations\n\n";

    const GuestImage loop_image = hotLoop();

    {
        ReportTable table("Block chaining (hot loop, 3000 iterations)",
                          {"variant", "tb exits", "chained", "Mcycles"});
        for (const bool chaining : {false, true}) {
            DbtConfig config = DbtConfig::risotto();
            config.chaining = chaining;
            config.name = chaining ? "chaining on" : "chaining off";
            const auto result = run(loop_image, config);
            json.push_back({std::string("dbt_ablation.") +
                                (chaining ? "chaining_on" : "chaining_off"),
                            seconds(result.makespan) * 1e9, 1,
                            persist::configFingerprint(config)});
            table.addRow(
                {config.name,
                 std::to_string(result.stats.get("machine.tb_exits")),
                 std::to_string(result.stats.get("dbt.chained")),
                 fixedString(result.makespan / 1e6, 3)});
        }
        show(table);
    }
    {
        ReportTable table("Optimizer on/off (hot loop)",
                          {"variant", "IR ops pre", "IR ops post",
                           "Mcycles"});
        for (const bool opt : {false, true}) {
            DbtConfig config = DbtConfig::risotto();
            config.name = opt ? "optimizer on" : "optimizer off";
            if (!opt) {
                config.optimizer.fenceMerging = false;
                config.optimizer.constantFolding = false;
                config.optimizer.memoryElimination = false;
                config.optimizer.deadCodeElimination = false;
            }
            const auto result = run(loop_image, config);
            json.push_back({std::string("dbt_ablation.") +
                                (opt ? "optimizer_on" : "optimizer_off"),
                            seconds(result.makespan) * 1e9, 1,
                            persist::configFingerprint(config)});
            table.addRow(
                {config.name,
                 std::to_string(result.stats.get("dbt.ir_ops_pre_opt")),
                 std::to_string(result.stats.get("dbt.ir_ops_post_opt")),
                 fixedString(result.makespan / 1e6, 3)});
        }
        show(table);
    }
    {
        const GuestImage cas_image = casLoop();
        ReportTable table("D3: CAS translation (uncontended loop)",
                          {"lowering", "helper calls", "Mcycles",
                           "vs helper"});
        struct Case
        {
            const char *label;
            mapping::RmwLowering rmw;
        };
        const Case cases[] = {
            {"helper call (qemu)", mapping::RmwLowering::HelperRmw1AL},
            {"inline casal (risotto)", mapping::RmwLowering::InlineCasal},
            {"dmbff;rmw2;dmbff", mapping::RmwLowering::FencedRmw2},
        };
        const char *json_names[] = {"cas_helper", "cas_inline_casal",
                                    "cas_fenced_rmw2"};
        std::uint64_t helper_cycles = 0;
        for (std::size_t ci = 0; ci < 3; ++ci) {
            const Case &c = cases[ci];
            DbtConfig config = DbtConfig::risotto();
            config.rmw = c.rmw;
            const auto result = run(cas_image, config);
            json.push_back({std::string("dbt_ablation.") + json_names[ci],
                            seconds(result.makespan) * 1e9, 1,
                            persist::configFingerprint(config)});
            if (c.rmw == mapping::RmwLowering::HelperRmw1AL)
                helper_cycles = result.makespan;
            table.addRow(
                {c.label,
                 std::to_string(result.stats.get("machine.helper_calls")),
                 fixedString(result.makespan / 1e6, 3),
                 fixedString(100.0 * result.makespan / helper_cycles, 1) +
                     "%"});
        }
        show(table);
    }
    std::cout << "Chaining removes nearly every dispatcher round trip; "
                 "the optimizer trims the\nflag-materialization ops the "
                 "frontend emits; inline casal beats the helper by\nthe "
                 "call overhead, and the fenced RMW2 pays two extra full "
                 "barriers.\n";
    writeBenchJson(json_path, json);
    return 0;
}
