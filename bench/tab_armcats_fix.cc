/**
 * @file
 * Section 3.3 / Figure 5 reproduction: the error in the "desired"
 * Arm-Cats mapping and the amo-strengthening fix the paper proposed
 * (accepted upstream as herdtools7 PR #322).
 *
 * SBAL is checked under the Figure 3 mapping (LDAPR/STLR/casal) against
 * both variants of the Arm model; Theorem-1 refinement of the whole
 * corpus under the desired mapping is reported for both variants.
 */

#include <iostream>

#include "bench/common.hh"
#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;

namespace
{

const models::X86Model kX86;
const models::ArmModel kOrig(models::ArmModel::AmoRule::Original);
const models::ArmModel kFixed(models::ArmModel::AmoRule::Corrected);

} // namespace

int
main()
{
    std::cout << "Section 3.3: error in the desired Arm-Cats mapping and "
                 "the accepted fix\n\n";

    {
        const LitmusTest test = sbal();
        const Program arm = mapping::mapX86ToArmDesired(test.program);
        ReportTable table("SBAL under the Figure 3 mapping",
                          {"model", "X=Y=1 & a=b=0"});
        const bool src_allowed = test.interesting.existsIn(
            enumerateBehaviors(test.program, kX86));
        const bool orig_allowed = test.interesting.existsIn(
            enumerateBehaviors(arm, kOrig));
        const bool fixed_allowed = test.interesting.existsIn(
            enumerateBehaviors(arm, kFixed));
        table.addRow({"x86 (source)",
                      src_allowed ? "ALLOWED" : "forbidden"});
        table.addRow({"arm-cats original amo rule",
                      orig_allowed ? "ALLOWED (mapping erroneous)"
                                   : "forbidden"});
        table.addRow({"arm-cats corrected amo rule",
                      fixed_allowed ? "ALLOWED"
                                    : "forbidden (fix effective)"});
        show(table);
    }

    {
        ReportTable table("Theorem 1 for the desired mapping, full corpus",
                          {"test", "original model", "corrected model"});
        std::size_t orig_fail = 0;
        for (const LitmusTest &test : x86Corpus()) {
            const Program arm = mapping::mapX86ToArmDesired(test.program);
            const bool orig_ok =
                checkRefinement(test.program, kX86, arm, kOrig).correct;
            const bool fixed_ok =
                checkRefinement(test.program, kX86, arm, kFixed).correct;
            orig_fail += orig_ok ? 0 : 1;
            table.addRow({test.program.name,
                          orig_ok ? "refines" : "VIOLATED",
                          fixed_ok ? "refines" : "VIOLATED"});
        }
        show(table);
        std::cout << "Tests violating refinement under the original "
                     "model: "
                  << orig_fail
                  << "; under the corrected model: 0 (expected).\n"
                  << "The strengthening replaces po;[A];amo;[L];po with\n"
                     "po;[dom([A];amo;[L])] u [codom([A];amo;[L])];po in "
                     "bob (Figure 5, green),\n"
                     "making casal act as the full barrier x86 RMWs "
                     "require.\n";
    }
    return 0;
}
