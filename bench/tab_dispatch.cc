/**
 * @file
 * Dispatch-loop table: per-instruction decode-and-switch vs the
 * pre-decoded threaded dispatch loop (and fusion on top).
 *
 * Measures the standalone gx86 interpreter -- the purest dispatch loop
 * in the tree, no translation in the way -- over an interpreter-heavy
 * workload whose hot loop contains every fusible pattern (host
 * wall-clock, like tab_warmstart; this is the reproduction's own
 * dispatch overhead, not simulated guest time):
 *
 *  - legacy:   decode every instruction at its pc (GuestImage::decodeAt
 *              + switch), the pre-PR baseline kept for this comparison,
 *  - decoded:  dispatch from the per-image DecodedSegment, fusion off,
 *  - fused:    decoded + peephole pair fusion.
 *
 * Also times DecodedSegment::build itself (the one-time per-image cost
 * the cache amortizes). Every mode must produce bit-identical guest
 * results, including the retired-instruction counter. The headline
 * acceptance bar: decoded dispatch at least halves ns per guest
 * instruction vs legacy (checked hard outside --smoke).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "gx86/assembler.hh"
#include "gx86/decoded.hh"
#include "gx86/interp.hh"
#include "support/error.hh"

using namespace risotto;
using namespace risotto::bench;

namespace
{

double
nsBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::nano>(b - a).count();
}

/** An interpreter-heavy program: a hot loop whose body strings together
 * all five fusible shapes (cmp+jcc, mov-imm+alu, inc/dec chain,
 * store+load) plus unfusible filler, iterated @p iters times. */
gx86::GuestImage
dispatchWorkload(std::uint64_t iters)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(1, 0);                                     // accumulator
    a.movri(2, static_cast<std::int64_t>(iters));      // counter
    a.movri(5, static_cast<std::int64_t>(buf));        // buffer base
    const auto loop = a.newLabel();
    a.bind(loop);
    a.movri(3, 42);     // mov-imm + alu pair
    a.add(1, 3);
    a.addi(4, 1);       // inc/dec chain
    a.subi(4, 2);
    a.store(5, 8, 1);   // store + load pair
    a.load(6, 5, 8);
    a.xor_(1, 6);       // unfusible filler (no Xor second member)
    a.shri(1, 1);
    a.subi(2, 1);
    a.cmpri(2, 0);      // cmp + jcc pair (the loop branch itself)
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 1);      // print one summary char
    a.movri(1, '.');
    a.syscall();
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

struct Mode
{
    std::string name;
    gx86::InterpOptions options;
};

struct Measurement
{
    gx86::InterpResult result;
    double nsPerInsn = 0.0;
    double totalNs = 0.0;
};

Measurement
measure(const gx86::GuestImage &image, const gx86::InterpOptions &options,
        std::size_t reps)
{
    Measurement best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        gx86::Interpreter interp(image, options);
        const auto t0 = std::chrono::steady_clock::now();
        const gx86::InterpResult result = interp.run();
        const auto t1 = std::chrono::steady_clock::now();
        const double ns = nsBetween(t0, t1);
        if (rep == 0 || ns < best.totalNs) {
            best.result = result;
            best.totalNs = ns;
            best.nsPerInsn =
                ns / static_cast<double>(
                         std::max<std::uint64_t>(1, result.instructions));
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    const std::uint64_t iters = smoke ? 20'000 : 1'000'000;
    const std::size_t reps = smoke ? 2 : 5;
    const gx86::GuestImage image = dispatchWorkload(iters);

    std::vector<Mode> modes;
    {
        Mode legacy;
        legacy.name = "legacy";
        legacy.options.decodeCache = false;
        modes.push_back(legacy);
        Mode decoded;
        decoded.name = "decoded";
        decoded.options.fusion.enabled = false;
        modes.push_back(decoded);
        Mode fused;
        fused.name = "fused";
        modes.push_back(fused);
    }

    ReportTable table("Dispatch loop: decode-and-switch vs pre-decoded "
                      "threaded dispatch",
                      {"mode", "guest insns", "ns/insn", "vs legacy"});
    std::vector<Measurement> measured;
    for (const Mode &mode : modes)
        measured.push_back(measure(image, mode.options, reps));

    // Bit-identical guest behaviour across every mode, including the
    // retired-instruction counter (fused pairs retire two).
    for (std::size_t m = 1; m < measured.size(); ++m) {
        fatalIf(measured[m].result.output != measured[0].result.output ||
                    measured[m].result.exitCode !=
                        measured[0].result.exitCode ||
                    measured[m].result.instructions !=
                        measured[0].result.instructions,
                "mode '" + modes[m].name +
                    "' diverged from the legacy interpreter");
    }

    const double legacy_ns = measured[0].nsPerInsn;
    for (std::size_t m = 0; m < modes.size(); ++m) {
        const Measurement &mm = measured[m];
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      legacy_ns / mm.nsPerInsn);
        char ns[32];
        std::snprintf(ns, sizeof ns, "%.3f", mm.nsPerInsn);
        table.addRow({modes[m].name,
                      std::to_string(mm.result.instructions), ns,
                      speedup});
        BenchJsonEntry entry;
        entry.name = m == 0 ? "BM_DispatchLoop_legacy"
                            : (modes[m].name == "decoded"
                                   ? "BM_DispatchLoop"
                                   : "BM_DispatchLoop_fused");
        entry.nsPerOp = mm.nsPerInsn;
        entry.guestInsns = mm.result.instructions;
        entry.nsPerGuestInsn = mm.nsPerInsn;
        json.push_back(entry);
    }
    show(table);

    // The one-time pre-decode cost the cache amortizes.
    {
        gx86::FusionConfig fusion;
        double best_ns = 0.0;
        std::shared_ptr<const gx86::DecodedSegment> seg;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            seg = gx86::DecodedSegment::build(image, fusion);
            const auto t1 = std::chrono::steady_clock::now();
            const double ns = nsBetween(t0, t1);
            if (rep == 0 || ns < best_ns)
                best_ns = ns;
        }
        ReportTable build("Pre-decode pass (one-time, per image)",
                          {"text bytes", "entries", "fused", "total us",
                           "ns/entry"});
        char us[32];
        std::snprintf(us, sizeof us, "%.1f", best_ns / 1000.0);
        char per[32];
        std::snprintf(per, sizeof per, "%.2f",
                      best_ns / static_cast<double>(std::max<std::uint64_t>(
                                    1, seg->validEntries())));
        build.addRow({std::to_string(seg->size()),
                      std::to_string(seg->validEntries()),
                      std::to_string(seg->fusedEntries()), us, per});
        show(build);
        BenchJsonEntry entry;
        entry.name = "BM_PredecodeImage";
        entry.nsPerOp = best_ns;
        entry.guestInsns = seg->validEntries();
        entry.nsPerGuestInsn =
            best_ns / static_cast<double>(
                          std::max<std::uint64_t>(1, seg->validEntries()));
        json.push_back(entry);
    }

    writeBenchJson(json_path, json);

    const double speedup = legacy_ns / measured[1].nsPerInsn;
    std::cout << "decoded dispatch speedup vs legacy: " << speedup
              << "x (bar: 2x)\n";
    if (!smoke && speedup < 2.0) {
        std::cerr << "tab_dispatch: decoded dispatch did not reach the "
                     "2x bar\n";
        return 1;
    }
    return 0;
}
