/**
 * @file
 * Figure 8 / Figure 9 reproduction: minimality of the verified mapping
 * schemes -- "each placed fence is necessary in some program".
 *
 * Each ingredient of the Figure 7 schemes is weakened or dropped in turn
 * and the resulting pipeline is swept over the litmus corpus; a correct
 * minimality story finds at least one test that breaks for every
 * weakening, while the full scheme passes everything.
 */

#include <functional>
#include <iostream>

#include "bench/common.hh"
#include "litmus/check.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;
using namespace risotto::mapping;

namespace
{

const models::X86Model kX86;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);

/** A weakening: rewrites the mapped Arm program of the full pipeline. */
struct Weakening
{
    std::string label;
    std::string drops;
    std::function<Program(const Program &)> apply;
};

/** Remove every fence of @p kind from @p p. */
Program
dropFences(const Program &p, memcore::FenceKind kind)
{
    Program out = p;
    for (Thread &t : out.threads) {
        std::vector<Instr> kept;
        for (const Instr &i : t.instrs)
            if (!(i.kind == Instr::Kind::Fence && i.fence == kind))
                kept.push_back(i);
        t.instrs = std::move(kept);
    }
    return out;
}

/** Replace every fence of kind @p from with @p to. */
Program
weakenFences(const Program &p, memcore::FenceKind from,
             memcore::FenceKind to)
{
    Program out = p;
    for (Thread &t : out.threads)
        for (Instr &i : t.instrs)
            if (i.kind == Instr::Kind::Fence && i.fence == from)
                i.fence = to;
    return out;
}

/** Demote every RMW1-AL to a plain RMW1 (no acquire/release). */
Program
plainRmw(const Program &p)
{
    Program out = p;
    for (Thread &t : out.threads) {
        for (Instr &i : t.instrs) {
            if (i.kind == Instr::Kind::Rmw) {
                i.readAccess = memcore::Access::Plain;
                i.writeAccess = memcore::Access::Plain;
            }
        }
    }
    return out;
}

} // namespace

int
main()
{
    std::cout << "Minimality of the verified schemes (Figures 8 and 9): "
                 "every fence earns its keep\n\n";

    const auto corpus = x86Corpus();

    const std::vector<Weakening> weakenings = {
        {"full scheme (casal)", "nothing",
         [](const Program &p) { return p; }},
        {"drop trailing DMBLD after loads", "ld-ld / ld-st order (Fig 8)",
         [](const Program &p) {
             return dropFences(p, memcore::FenceKind::DmbLd);
         }},
        {"drop leading DMBST before stores", "st-st order (MP-IR, Fig 8)",
         [](const Program &p) {
             return dropFences(p, memcore::FenceKind::DmbSt);
         }},
        {"weaken DMBFF to DMBLD", "st-ld order (mfence/RMW)",
         [](const Program &p) {
             return weakenFences(p, memcore::FenceKind::DmbFull,
                                 memcore::FenceKind::DmbLd);
         }},
        {"casal -> plain cas", "RMW full-barrier semantics (SBAL)",
         [](const Program &p) { return plainRmw(p); }},
    };

    ReportTable table("Weakened risotto(casal) pipeline over the corpus",
                      {"variant", "would lose", "refine", "violations",
                       "first failing test"});

    for (const Weakening &w : weakenings) {
        std::size_t ok = 0;
        std::size_t bad = 0;
        std::string first;
        for (const LitmusTest &test : corpus) {
            const Program arm = w.apply(mapX86ToArm(
                test.program, X86ToTcgScheme::Risotto,
                TcgToArmScheme::Risotto, RmwLowering::InlineCasal));
            if (checkRefinement(test.program, kX86, arm, kArm).correct) {
                ++ok;
            } else {
                ++bad;
                if (first.empty())
                    first = test.program.name;
            }
        }
        table.addRow({w.label, w.drops, std::to_string(ok),
                      std::to_string(bad), first.empty() ? "-" : first});
    }
    show(table);

    // Figure 9: the DMBFFs around RMW2 are both necessary.
    {
        ReportTable table9("Figure 9: fences around DMBFF;RMW2;DMBFF",
                           {"variant", "refine", "violations",
                            "first failing test"});
        const std::vector<std::pair<std::string, bool>> variants = {
            {"full DMBFF;RMW2;DMBFF", true},
            {"RMW2 without surrounding DMBFF", false},
        };
        for (const auto &[label, keep] : variants) {
            std::size_t ok = 0;
            std::size_t bad = 0;
            std::string first;
            for (const LitmusTest &test : corpus) {
                Program arm = mapX86ToArm(
                    test.program, X86ToTcgScheme::Risotto,
                    TcgToArmScheme::Risotto, RmwLowering::FencedRmw2);
                if (!keep)
                    arm = dropFences(arm, memcore::FenceKind::DmbFull);
                if (checkRefinement(test.program, kX86, arm, kArm)
                        .correct) {
                    ++ok;
                } else {
                    ++bad;
                    if (first.empty())
                        first = test.program.name;
                }
            }
            table9.addRow({label, std::to_string(ok),
                           std::to_string(bad),
                           first.empty() ? "-" : first});
        }
        show(table9);
    }

    std::cout << "Expected: only the unweakened schemes refine the whole "
                 "corpus; every weakening\nbreaks at least one litmus "
                 "test, matching the paper's minimality claims.\n";
    return 0;
}
