/**
 * @file
 * Warm-start table: persistent translation cache vs cold translation.
 *
 * For every workload of the suite, measure (host wall-clock, unlike the
 * simulated-cycle tables -- snapshot loading is real host-side work):
 *
 *  - cold:      translating every snapshotted block on a fresh engine,
 *  - warm/val:  parsing + importing the snapshot with per-record
 *               obligation-graph validation (the default),
 *  - warm/ck:   parsing + importing with checksum + decode checks only,
 *
 * then prove behaviour: the warm engine, a checksum-only engine, an
 * engine fed a bit-flipped snapshot, and an engine with persist.record
 * fault injection armed must all produce the cold run's guest-visible
 * results exactly (the corrupted loads just degrade blocks to cold
 * translation).
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "persist/fingerprint.hh"
#include "persist/snapshot.hh"
#include "support/error.hh"
#include "support/faultinject.hh"
#include "support/format.hh"
#include "workloads/workloads.hh"

using namespace risotto;
using namespace risotto::bench;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;
using workloads::WorkloadSpec;

namespace
{

constexpr std::size_t Threads = 2;

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

std::vector<ThreadSpec>
threadSpecs()
{
    std::vector<ThreadSpec> threads(Threads);
    for (std::size_t t = 0; t < Threads; ++t)
        threads[t].regs[0] = t;
    return threads;
}

bool
sameGuestBehaviour(const dbt::RunResult &a, const dbt::RunResult &b)
{
    return a.finished == b.finished && a.exitCodes == b.exitCodes &&
           a.outputs == b.outputs;
}

/** A wide program: many distinct basic blocks, each executed only a
 * handful of times -- the regime persistent caches exist for. Here the
 * per-block translate-vs-import cost dominates the per-file overhead
 * (image digest, parse setup) that the small suite workloads amortize
 * over just a few blocks. */
gx86::GuestImage
wideProgram(std::size_t segments)
{
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, 8);
    const auto outer = a.newLabel();
    a.bind(outer);
    for (std::size_t s = 0; s < segments; ++s) {
        a.addi(1, static_cast<std::int32_t>(s + 1));
        const auto next = a.newLabel();
        a.jmp(next);
        a.bind(next);
    }
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, outer);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

/** Deterministically flip one bit in every @p stride-th byte past the
 * header (corrupting record frames, never the file's existence). */
std::vector<std::uint8_t>
bitFlipped(std::vector<std::uint8_t> bytes, std::size_t stride)
{
    for (std::size_t i = 64; i < bytes.size(); i += stride)
        bytes[i] ^= 0x01;
    return bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    // An aggressive tier-2 threshold makes the execution-side payoff of
    // persisted profiles visible even at smoke sizes: the cold engine's
    // early promotion attempts abandon on thin successor profiles
    // (promotionFailed is sticky), while the warm engine's pre-seeded
    // exec counts and successor edges promote superblocks immediately.
    DbtConfig config = DbtConfig::risotto();
    config.tier2Threshold = 2;
    std::cout << "Warm-start: persistent translation cache vs cold "
                 "translation (host wall-clock), "
              << Threads << " threads\n\n";

    ReportTable table("Startup translation cost and run makespan",
                      {"workload", "blocks", "cold[ms]", "warm/val[ms]",
                       "warm/ck[ms]", "cold[kcyc]", "warm[kcyc]",
                       "run speedup"});
    ReportTable faults("Corruption tolerance (guest behaviour vs cold)",
                       {"workload", "mode", "loaded", "rejected",
                        "identical"});

    struct BenchCase
    {
        std::string name;
        gx86::GuestImage image;
    };
    std::vector<BenchCase> cases;
    for (WorkloadSpec spec : workloads::fullSuite()) {
        if (smoke)
            spec.iterations = 50;
        cases.push_back({spec.name, workloads::buildGuestWorkload(spec)});
    }
    cases.push_back({"wide-blocks", wideProgram(smoke ? 128 : 512)});

    for (const BenchCase &bench_case : cases) {
        const std::string &name = bench_case.name;
        const gx86::GuestImage &image = bench_case.image;

        // Reference: a cold engine, run to completion, snapshotted.
        Dbt reference(image, config);
        const auto cold_result = reference.run(threadSpecs());
        if (!cold_result.finished)
            throw FatalError("workload did not finish: " + name);
        const persist::Snapshot snap = reference.exportSnapshot();
        const std::vector<std::uint8_t> bytes = persist::serialize(snap);
        const std::size_t blocks = snap.records.size();

        // Cold translation cost: fresh engine, translate every
        // snapshotted head the way a cold start would.
        Dbt cold_engine(image, config);
        const auto c0 = std::chrono::steady_clock::now();
        for (const persist::TbRecord &rec : snap.records)
            cold_engine.lookupOrTranslate(rec.path.front());
        const auto c1 = std::chrono::steady_clock::now();
        const double cold_ms = msBetween(c0, c1);

        // Warm import, validated (the default trust model).
        Dbt warm_val(image, config);
        const auto v0 = std::chrono::steady_clock::now();
        persist::ParseReport parsed;
        const persist::Snapshot reparsed = persist::parse(bytes, parsed);
        const auto val_report = warm_val.importSnapshot(reparsed, true);
        const auto v1 = std::chrono::steady_clock::now();
        const double val_ms = msBetween(v0, v1);

        // Warm import, checksum + decode checks only.
        Dbt warm_ck(image, config);
        const auto k0 = std::chrono::steady_clock::now();
        persist::ParseReport parsed_ck;
        const persist::Snapshot reparsed_ck =
            persist::parse(bytes, parsed_ck);
        const auto ck_report = warm_ck.importSnapshot(reparsed_ck, false);
        const auto k1 = std::chrono::steady_clock::now();
        const double ck_ms = msBetween(k0, k1);

        // Differential: warm engines must reproduce the cold run.
        const auto val_result = warm_val.run(threadSpecs());

        // Execution-side payoff, second generation: the first warm run
        // promotes superblocks out of the persisted profiles (paying
        // the promotion cost itself), re-exports, and the *next*
        // session starts with the superblocks installed for free. The
        // makespan is deterministic simulated cycles, immune to
        // container noise.
        const persist::Snapshot gen2_snap = warm_val.exportSnapshot();
        Dbt gen2(image, config);
        gen2.importSnapshot(gen2_snap, true);
        const auto gen2_result = gen2.run(threadSpecs());
        table.addRow(
            {name, std::to_string(blocks), fixedString(cold_ms, 3),
             fixedString(val_ms, 3), fixedString(ck_ms, 3),
             fixedString(cold_result.makespan / 1e3, 1),
             fixedString(gen2_result.makespan / 1e3, 1),
             fixedString(gen2_result.makespan > 0
                             ? static_cast<double>(cold_result.makespan) /
                                   static_cast<double>(gen2_result.makespan)
                             : 0.0,
                         3)});
        faults.addRow({name, "validated",
                       std::to_string(val_report.loaded),
                       std::to_string(val_report.rejected),
                       sameGuestBehaviour(cold_result, val_result)
                           ? "yes"
                           : "NO"});
        faults.addRow({name, "2nd generation",
                       std::to_string(gen2_snap.records.size()),
                       "0",
                       sameGuestBehaviour(cold_result, gen2_result)
                           ? "yes"
                           : "NO"});
        const auto ck_result = warm_ck.run(threadSpecs());
        faults.addRow({name, "checksum-only",
                       std::to_string(ck_report.loaded),
                       std::to_string(ck_report.rejected),
                       sameGuestBehaviour(cold_result, ck_result)
                           ? "yes"
                           : "NO"});

        // Bit-flipped snapshot: parse drops the damaged frames, the
        // engine translates those blocks cold, behaviour is unchanged.
        Dbt damaged(image, config);
        persist::ParseReport damaged_parse;
        const persist::Snapshot damaged_snap =
            persist::parse(bitFlipped(bytes, 97), damaged_parse);
        const auto damaged_report =
            damaged.importSnapshot(damaged_snap, true);
        const auto damaged_result = damaged.run(threadSpecs());
        faults.addRow(
            {name, "bit-flipped",
             std::to_string(damaged_report.loaded),
             std::to_string(damaged_report.rejected +
                            damaged_parse.recordsBadChecksum +
                            damaged_parse.recordsBadBounds +
                            damaged_parse.recordsTruncated),
             sameGuestBehaviour(cold_result, damaged_result) ? "yes"
                                                             : "NO"});

        // Injected loader faults: every record draw can fail; dropped
        // records degrade to cold translation, never to wrong code.
        DbtConfig faulty = config;
        faulty.faults.seed = 20260805;
        faulty.faults.siteRates[faultsites::PersistRecord] = 0.25;
        Dbt injected(image, faulty);
        persist::ParseReport injected_parse;
        const persist::Snapshot injected_snap =
            persist::parse(bytes, injected_parse);
        const auto injected_report =
            injected.importSnapshot(injected_snap, true);
        const auto injected_result = injected.run(threadSpecs());
        faults.addRow({name, "fault-injected",
                       std::to_string(injected_report.loaded),
                       std::to_string(injected_report.rejected),
                       sameGuestBehaviour(cold_result, injected_result)
                           ? "yes"
                           : "NO"});

        const double per_block = blocks > 0 ? 1.0 / blocks : 0.0;
        json.push_back({"warmstart." + name + ".cold_translate",
                        cold_ms * 1e6 * per_block, Threads,
                        persist::configFingerprint(config)});
        json.push_back({"warmstart." + name + ".import_validated",
                        val_ms * 1e6 * per_block, Threads,
                        persist::configFingerprint(config)});
        json.push_back({"warmstart." + name + ".import_checksum",
                        ck_ms * 1e6 * per_block, Threads,
                        persist::configFingerprint(config)});
        BenchJsonEntry cold_run{"warmstart." + name + ".cold_run",
                                seconds(cold_result.makespan) * 1e9,
                                Threads,
                                persist::configFingerprint(config)};
        cold_run.timeToFirstDispatchNs = static_cast<double>(
            cold_result.stats.get("dbt.time_to_first_dispatch_ns"));
        json.push_back(cold_run);
        BenchJsonEntry warm_run{"warmstart." + name + ".warm_run",
                                seconds(gen2_result.makespan) * 1e9,
                                Threads,
                                persist::configFingerprint(config)};
        warm_run.timeToFirstDispatchNs = static_cast<double>(
            gen2_result.stats.get("dbt.time_to_first_dispatch_ns"));
        json.push_back(warm_run);
    }

    show(table);
    show(faults);
    std::cout << "Times are host wall-clock (translation work is not "
                 "simulated); expect noise in container CI.\n";
    writeBenchJson(json_path, json);
    return 0;
}
