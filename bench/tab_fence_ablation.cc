/**
 * @file
 * Design-choice ablations (DESIGN.md D1/D2):
 *  - D1: fence population per mapping scheme -- how many of each DMB
 *    flavour each variant executes on a representative workload, and
 *    where the cycles go.
 *  - D2: the fence-merging optimization on/off (Section 6.1), measured
 *    on a store/load-dense workload where merging opportunities arise
 *    from adjacent guest accesses.
 */

#include <iostream>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "support/format.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

using namespace risotto;
using namespace risotto::bench;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

dbt::RunResult
runOne(const gx86::GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    std::vector<ThreadSpec> threads(2);
    threads[1].regs[0] = 1;
    return engine.run(threads);
}

} // namespace

int
main()
{
    std::cout << "Ablations: fence placement (D1) and fence merging "
                 "(D2)\n\n";

    const auto spec = workloads::workloadByName("freqmine");
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

    // --- D1: fence population per scheme -----------------------------------
    {
        ReportTable table("D1: executed barriers on 'freqmine' (2 threads)",
                          {"variant", "dmb ish", "dmb ishld", "dmb ishst",
                           "Mcycles"});
        for (const DbtConfig &config :
             {DbtConfig::qemu(), DbtConfig::qemuNoFences(),
              DbtConfig::tcgVer(), DbtConfig::risotto()}) {
            const auto result = runOne(image, config);
            table.addRow(
                {config.name,
                 std::to_string(result.stats.get("machine.dmb_full")),
                 std::to_string(result.stats.get("machine.dmb_ld")),
                 std::to_string(result.stats.get("machine.dmb_st")),
                 fixedString(result.makespan / 1e6, 3)});
        }
        show(table);
        std::cout << "Expected: qemu turns every store fence into DMB ISH; "
                     "the verified scheme\ndemotes them to DMB ISHST and "
                     "keeps DMB ISHLD for loads (Figure 7b).\n\n";
    }

    // --- D2: fence merging on/off -------------------------------------------
    {
        ReportTable table("D2: fence merging (Section 6.1), 'freqmine'",
                          {"variant", "fences merged", "dmb ish",
                           "dmb ishld", "dmb ishst", "Mcycles",
                           "vs unmerged"});
        DbtConfig merged = DbtConfig::risotto();
        DbtConfig unmerged = DbtConfig::risotto();
        unmerged.name = "risotto/no-merge";
        unmerged.optimizer.fenceMerging = false;

        const auto off = runOne(image, unmerged);
        const auto on = runOne(image, merged);
        table.addRow(
            {unmerged.name, "0",
             std::to_string(off.stats.get("machine.dmb_full")),
             std::to_string(off.stats.get("machine.dmb_ld")),
             std::to_string(off.stats.get("machine.dmb_st")),
             fixedString(off.makespan / 1e6, 3), "100.0%"});
        table.addRow(
            {merged.name,
             std::to_string(on.stats.get("opt.fences_merged")),
             std::to_string(on.stats.get("machine.dmb_full")),
             std::to_string(on.stats.get("machine.dmb_ld")),
             std::to_string(on.stats.get("machine.dmb_st")),
             fixedString(on.makespan / 1e6, 3),
             fixedString(100.0 * on.makespan / off.makespan, 1) + "%"});
        show(table);
        std::cout << "Merging collapses the ld;Frm / Fww;st adjacencies "
                     "the Figure 7a scheme\ncreates into single stronger "
                     "barriers (the Section 6.1 example).\n";
    }
    return 0;
}
