/**
 * @file
 * Figure 12: run time of the PARSEC and Phoenix benchmark proxies under
 * QEMU with no fence generation (no-fences, incorrect), QEMU with the
 * verified mappings (tcg-ver), and Risotto, relative to baseline QEMU;
 * native execution shown for the performance gap. Lower is better.
 *
 * Also prints the derived analysis of Section 7.2: the share of run time
 * attributable to ordering fences (qemu vs no-fences) and the average
 * improvement of the verified mappings.
 */

#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "machine/machine.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"
#include "support/format.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

using namespace risotto;
using namespace risotto::bench;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;
using workloads::WorkloadSpec;

namespace
{

constexpr std::size_t Threads = 4;

std::uint64_t
runVariant(const gx86::GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    std::vector<ThreadSpec> threads(Threads);
    for (std::size_t t = 0; t < Threads; ++t)
        threads[t].regs[0] = t;
    const auto result = engine.run(threads);
    if (!result.finished)
        throw FatalError("workload did not finish: " + config.name);
    return result.makespan;
}

std::uint64_t
runNative(const WorkloadSpec &spec)
{
    aarch::CodeBuffer code;
    const aarch::CodeAddr entry = workloads::emitNativeWorkload(spec, code);
    gx86::Memory memory;
    machine::Machine machine(code, memory, {});
    for (std::size_t t = 0; t < Threads; ++t) {
        const std::size_t idx = machine.addCore(entry);
        machine.core(idx).x[0] = t;
    }
    if (!machine.run())
        throw FatalError("native workload did not finish: " + spec.name);
    return machine.makespan();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    std::cout << "Figure 12: PARSEC + Phoenix run time relative to QEMU "
                 "(lower is better), "
              << Threads << " threads\n\n";

    ReportTable table("Run time w.r.t. QEMU [%]",
                      {"benchmark", "suite", "qemu[Mcyc]", "no-fences",
                       "tcg-ver", "risotto", "native"});

    double sum_nofences = 0.0;
    double sum_tcgver = 0.0;
    double sum_risotto = 0.0;
    double max_fence_share = 0.0;
    double best_improvement = 0.0;
    std::size_t count = 0;

    for (WorkloadSpec spec : workloads::fullSuite()) {
        if (smoke)
            spec.iterations = 50; // CI: exercise every variant, briefly.
        const gx86::GuestImage image = workloads::buildGuestWorkload(spec);
        const std::uint64_t qemu = runVariant(image, DbtConfig::qemu());
        const std::uint64_t nofences =
            runVariant(image, DbtConfig::qemuNoFences());
        const std::uint64_t tcgver = runVariant(image, DbtConfig::tcgVer());
        const std::uint64_t risotto =
            runVariant(image, DbtConfig::risotto());
        const std::uint64_t native = runNative(spec);

        const double rel_nofences = 100.0 * nofences / qemu;
        const double rel_tcgver = 100.0 * tcgver / qemu;
        const double rel_risotto = 100.0 * risotto / qemu;
        const double rel_native = 100.0 * native / qemu;

        sum_nofences += rel_nofences;
        sum_tcgver += rel_tcgver;
        sum_risotto += rel_risotto;
        max_fence_share = std::max(max_fence_share, 100.0 - rel_nofences);
        best_improvement =
            std::max(best_improvement, 100.0 - rel_tcgver);
        ++count;

        table.addRow({spec.name, spec.suite,
                      fixedString(qemu / 1e6, 2),
                      fixedString(rel_nofences, 1),
                      fixedString(rel_tcgver, 1),
                      fixedString(rel_risotto, 1),
                      fixedString(rel_native, 1)});
        json.push_back({"fig12." + spec.name + ".qemu",
                        seconds(qemu) * 1e9, Threads,
                        persist::configFingerprint(DbtConfig::qemu())});
        json.push_back({"fig12." + spec.name + ".risotto",
                        seconds(risotto) * 1e9, Threads,
                        persist::configFingerprint(DbtConfig::risotto())});
    }
    show(table);

    const double avg_fence_share =
        100.0 - sum_nofences / static_cast<double>(count);
    std::cout << "Fence cost (qemu vs no-fences): up to "
              << fixedString(max_fence_share, 1) << "% of run time, "
              << fixedString(avg_fence_share, 1) << "% on average\n"
              << "  (paper: up to ~75% for freqmine, ~48% on average)\n";
    std::cout << "Verified mappings (tcg-ver) vs qemu: up to "
              << fixedString(best_improvement, 1) << "% faster, "
              << fixedString(100.0 - sum_tcgver /
                                         static_cast<double>(count), 1)
              << "% on average\n"
              << "  (paper: up to 19.7%, 6.7% on average)\n";
    std::cout << "Risotto (with unused linker) vs tcg-ver: "
              << fixedString((sum_risotto - sum_tcgver) /
                                 static_cast<double>(count), 2)
              << " percentage points difference "
                 "(paper: no measurable difference)\n";
    writeBenchJson(json_path, json);
    return 0;
}
