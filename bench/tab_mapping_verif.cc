/**
 * @file
 * Figure 7 / Theorem 1 reproduction: verified mapping schemes.
 *
 * For every pipeline (frontend scheme x backend scheme x RMW lowering)
 * the table reports how many corpus tests refine, i.e. every behaviour
 * of the mapped Arm program under Arm-Cats (corrected) is a behaviour of
 * the x86 source under x86-TSO. Both stages are also verified
 * separately (x86 -> TCG IR against the Figure 6 model, TCG IR -> Arm),
 * and the whole check is repeated over randomly generated programs --
 * the bounded-model-checking counterpart of the paper's 14k-line Agda
 * development.
 */

#include <iostream>

#include "bench/common.hh"
#include "litmus/check.hh"
#include "litmus/library.hh"
#include "litmus/random.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "support/rng.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;
using namespace risotto::mapping;

namespace
{

const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);

struct Pipeline
{
    const char *label;
    X86ToTcgScheme frontend;
    TcgToArmScheme backend;
    RmwLowering rmw;
    bool expected_correct;
};

const Pipeline kPipelines[] = {
    {"risotto (casal)", X86ToTcgScheme::Risotto, TcgToArmScheme::Risotto,
     RmwLowering::InlineCasal, true},
    {"risotto (dmbff;rmw2;dmbff)", X86ToTcgScheme::Risotto,
     TcgToArmScheme::Risotto, RmwLowering::FencedRmw2, true},
    {"qemu (rmw1al helper)", X86ToTcgScheme::Qemu, TcgToArmScheme::Qemu,
     RmwLowering::HelperRmw1AL, false},
    {"qemu (rmw2al helper)", X86ToTcgScheme::Qemu, TcgToArmScheme::Qemu,
     RmwLowering::HelperRmw2AL, false},
    {"no-fences", X86ToTcgScheme::NoFences, TcgToArmScheme::Risotto,
     RmwLowering::InlineCasal, false},
};

} // namespace

int
main()
{
    std::cout << "Theorem 1 over the litmus corpus "
                 "(x86 -> TCG IR -> Arm pipelines)\n\n";

    const auto corpus = x86Corpus();

    // --- Full pipelines -----------------------------------------------------
    {
        ReportTable table("x86 -> Arm refinement (corpus of " +
                              std::to_string(corpus.size()) + " tests)",
                          {"pipeline", "refines", "violations",
                           "expected"});
        for (const Pipeline &p : kPipelines) {
            std::size_t ok = 0;
            std::size_t bad = 0;
            for (const LitmusTest &test : corpus) {
                const Program arm =
                    mapX86ToArm(test.program, p.frontend, p.backend,
                                p.rmw);
                if (checkRefinement(test.program, kX86, arm, kArm)
                        .correct)
                    ++ok;
                else
                    ++bad;
            }
            table.addRow({p.label, std::to_string(ok),
                          std::to_string(bad),
                          p.expected_correct ? "all refine"
                                             : "violations"});
        }
        show(table);
    }

    // --- Stage-separated checks for the verified schemes -------------------
    {
        ReportTable table("Per-stage refinement, Risotto schemes",
                          {"stage", "tests", "refine"});
        std::size_t s1 = 0;
        std::size_t s2 = 0;
        for (const LitmusTest &test : corpus) {
            const Program ir =
                mapX86ToTcg(test.program, X86ToTcgScheme::Risotto);
            if (checkRefinement(test.program, kX86, ir, kTcg).correct)
                ++s1;
            const Program arm = mapTcgToArm(ir, TcgToArmScheme::Risotto,
                                            RmwLowering::InlineCasal);
            if (checkRefinement(ir, kTcg, arm, kArm).correct)
                ++s2;
        }
        table.addRow({"x86 -> TCG IR (Fig. 7a)",
                      std::to_string(corpus.size()), std::to_string(s1)});
        table.addRow({"TCG IR -> Arm (Fig. 7b)",
                      std::to_string(corpus.size()), std::to_string(s2)});
        show(table);
    }

    // --- Random-program sweep ----------------------------------------------
    {
        Rng rng(20260706);
        RandomProgramOptions opts;
        opts.maxInstrsPerThread = 3;
        opts.numLocations = 3;
        opts.rmwPercent = 35;
        opts.fencePercent = 10;
        const int programs = 400;
        std::size_t risotto_ok = 0;
        std::size_t qemu_ok = 0;
        for (int i = 0; i < programs; ++i) {
            const Program src = randomProgram(rng, opts);
            const Program risotto_arm =
                mapX86ToArm(src, X86ToTcgScheme::Risotto,
                            TcgToArmScheme::Risotto,
                            RmwLowering::InlineCasal);
            if (checkRefinement(src, kX86, risotto_arm, kArm).correct)
                ++risotto_ok;
            const Program qemu_arm =
                mapX86ToArm(src, X86ToTcgScheme::Qemu,
                            TcgToArmScheme::Qemu,
                            RmwLowering::HelperRmw1AL);
            if (checkRefinement(src, kX86, qemu_arm, kArm).correct)
                ++qemu_ok;
        }
        ReportTable table("Random-program sweep (" +
                              std::to_string(programs) + " programs)",
                          {"pipeline", "refine", "violations"});
        table.addRow({"risotto (casal)", std::to_string(risotto_ok),
                      std::to_string(programs -
                                     static_cast<int>(risotto_ok))});
        table.addRow({"qemu (rmw1al helper)", std::to_string(qemu_ok),
                      std::to_string(programs -
                                     static_cast<int>(qemu_ok))});
        show(table);
        std::cout << "Expected: the Risotto pipeline refines every "
                     "program; the QEMU pipeline\nviolates refinement "
                     "whenever a random program exercises its RMW "
                     "errors\n(the hand-written MPQ/SBQ shapes above are "
                     "the minimal such programs).\n";
    }
    return 0;
}
