/**
 * @file
 * Section 5.4 / Figure 10 reproduction: correctness of the TCG IR
 * transformations.
 *
 * Every applicable transformation site found in randomly generated TCG
 * programs (with the Risotto fence vocabulary) is applied and checked by
 * Theorem-1 refinement under the Figure 6 IR model. The unsound variant
 * (RAW across arbitrary fences, i.e. QEMU's rewrite without the
 * vocabulary precondition) is swept the same way to show it really is
 * the side condition doing the work.
 */

#include <iostream>
#include <map>

#include "bench/common.hh"
#include "litmus/check.hh"
#include "litmus/library.hh"
#include "litmus/random.hh"
#include "mapping/schemes.hh"
#include "mapping/transforms.hh"
#include "models/model.hh"
#include "support/rng.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;
using namespace risotto::mapping;

namespace
{

const models::TcgModel kTcg;

/** Generate a random TCG-flavoured program with Risotto fences only. */
Program
randomTcgProgram(Rng &rng)
{
    RandomProgramOptions opts;
    opts.x86Flavor = true; // Generate plain accesses + RMWs...
    opts.maxInstrsPerThread = 4;
    opts.rmwPercent = 10;
    opts.fencePercent = 0;
    Program p = randomProgram(rng, opts);
    // ...then sprinkle Risotto-vocabulary fences and SC RMW annotations.
    for (Thread &t : p.threads) {
        std::vector<Instr> out;
        for (Instr &i : t.instrs) {
            if (i.kind == Instr::Kind::Rmw) {
                i.readAccess = memcore::Access::Sc;
                i.writeAccess = memcore::Access::Sc;
            }
            out.push_back(i);
            if (rng.chance(30, 100)) {
                static const memcore::FenceKind kinds[] = {
                    memcore::FenceKind::Frm, memcore::FenceKind::Fww,
                    memcore::FenceKind::Fsc};
                out.push_back(Instr::fenceOf(kinds[rng.below(3)]));
            }
        }
        t.instrs = std::move(out);
    }
    return p;
}

} // namespace

int
main()
{
    std::cout << "Section 5.4: IR transformation correctness sweep "
                 "(Theorem 1 under the Figure 6 model)\n\n";

    Rng rng(424242);
    std::map<TransformKind, std::pair<std::size_t, std::size_t>> tally;
    const int programs = 250;
    for (int n = 0; n < programs; ++n) {
        const Program src = randomTcgProgram(rng);
        for (const TransformSite &site : findTransformSites(src)) {
            const Program dst = applyTransform(src, site);
            const bool ok = checkRefinement(src, kTcg, dst, kTcg).correct;
            auto &[pass, fail] = tally[site.kind];
            (ok ? pass : fail)++;
        }
    }

    ReportTable table("Verified transformations over " +
                          std::to_string(programs) + " random programs",
                      {"transformation", "sites", "refine", "violations"});
    for (const auto &[kind, counts] : tally) {
        table.addRow({transformKindName(kind),
                      std::to_string(counts.first + counts.second),
                      std::to_string(counts.first),
                      std::to_string(counts.second)});
    }
    show(table);

    // The unsound rewrite: RAW without the fence-vocabulary check, over
    // programs containing Fmr fences.
    std::size_t unsound_sites = 0;
    std::size_t unsound_violations = 0;
    for (int n = 0; n < programs; ++n) {
        Program src = randomTcgProgram(rng);
        // Replace fences with Fmr to create the FMR-like situation.
        for (Thread &t : src.threads)
            for (Instr &i : t.instrs)
                if (i.kind == Instr::Kind::Fence)
                    i.fence = memcore::FenceKind::Fmr;
        for (const TransformSite &site :
             findUnsoundRawAcrossAnyFence(src)) {
            const Program dst = applyTransform(src, site);
            ++unsound_sites;
            if (!checkRefinement(src, kTcg, dst, kTcg).correct)
                ++unsound_violations;
        }
    }
    // The FMR counterexample itself (the minimal violating program).
    std::size_t fmr_violations = 0;
    {
        const Program src = fmrSource().program;
        for (const TransformSite &site :
             findUnsoundRawAcrossAnyFence(src)) {
            const Program dst = applyTransform(src, site);
            ++unsound_sites;
            if (!checkRefinement(src, kTcg, dst, kTcg).correct) {
                ++unsound_violations;
                ++fmr_violations;
            }
        }
    }
    ReportTable bad("RAW without the vocabulary precondition "
                    "(programs with Fmr + the FMR test)",
                    {"sites applied", "violations found",
                     "of which FMR"});
    bad.addRow({std::to_string(unsound_sites),
                std::to_string(unsound_violations),
                std::to_string(fmr_violations)});
    show(bad);

    std::cout << "Expected: all eliminations/merges/reorders refine under "
                 "the side conditions of\nFigure 10; the unchecked RAW "
                 "rewrite violates refinement on FMR-shaped programs\n"
                 "(which is why the Risotto frontend never emits Fmr/Fwr, "
                 "Section 4.1).\n";
    return 0;
}
