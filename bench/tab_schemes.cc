/**
 * @file
 * Prints the paper's mapping-scheme tables (Figures 2, 3, 7a, 7b, 7c) as
 * implemented, by mapping one instruction of each access type through
 * the actual scheme code -- so the printed tables are generated from the
 * same functions the DBT and the verifier use, not hand-copied.
 */

#include <iostream>

#include "bench/common.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;
using namespace risotto::mapping;

namespace
{

/** Render a mapped single-instruction thread as "a; b; c". */
std::string
renderMapped(const Program &p)
{
    std::string out;
    for (const Instr &i : p.threads.at(0).instrs) {
        if (!out.empty())
            out += "; ";
        out += i.toString();
    }
    return out;
}

Program
single(Instr i)
{
    Program p;
    p.name = "probe";
    Thread t;
    t.instrs = {i};
    p.threads = {t};
    return p;
}

const std::vector<std::pair<const char *, Instr>> kAccessKinds = {
    {"RMOV (load)", Instr::load(0, LocX)},
    {"WMOV (store)", Instr::store(LocX, 1)},
    {"RMW (lock cmpxchg)", Instr::rmw(0, LocX, 0, 1)},
    {"MFENCE", Instr::fenceOf(memcore::FenceKind::MFence)},
};

} // namespace

int
main()
{
    std::cout << "The mapping schemes, generated from the implementation"
                 "\n(locations/registers are litmus-level: [0] is X)\n\n";

    {
        ReportTable table("Figure 2: QEMU, x86 -> TCG IR -> Arm",
                          {"x86", "TCG IR (Fmr/Fmw leading)",
                           "Arm (helper casal)"});
        for (const auto &[label, instr] : kAccessKinds) {
            const Program ir = mapX86ToTcg(single(instr),
                                           X86ToTcgScheme::Qemu);
            const Program arm = mapTcgToArm(ir, TcgToArmScheme::Qemu,
                                            RmwLowering::HelperRmw1AL);
            table.addRow({label, renderMapped(ir), renderMapped(arm)});
        }
        show(table);
    }
    {
        ReportTable table("Figure 7a/7b/7c: Risotto verified schemes",
                          {"x86", "TCG IR (Fig. 7a)",
                           "Arm, casal (Fig. 7b)",
                           "Arm, fenced RMW2 (Fig. 7b)"});
        for (const auto &[label, instr] : kAccessKinds) {
            const Program ir = mapX86ToTcg(single(instr),
                                           X86ToTcgScheme::Risotto);
            const Program casal = mapTcgToArm(
                ir, TcgToArmScheme::Risotto, RmwLowering::InlineCasal);
            const Program rmw2 = mapTcgToArm(
                ir, TcgToArmScheme::Risotto, RmwLowering::FencedRmw2);
            table.addRow({label, renderMapped(ir), renderMapped(casal),
                          renderMapped(rmw2)});
        }
        show(table);
    }
    {
        ReportTable table("Figure 3: the 'desired' direct Arm-Cats "
                          "mapping",
                          {"x86", "Arm"});
        for (const auto &[label, instr] : kAccessKinds)
            table.addRow({label,
                          renderMapped(mapX86ToArmDesired(single(instr)))});
        show(table);
    }
    {
        ReportTable table("Extension: standard x86 -> RISC-V (RVWMO)",
                          {"x86", "RISC-V"});
        for (const auto &[label, instr] : kAccessKinds)
            table.addRow({label,
                          renderMapped(mapX86ToRiscv(single(instr)))});
        show(table);
    }
    std::cout << "Legend: fences are TCG Fxy / Arm dmbff-dmbld-dmbst; "
                 "RMW1.AL is a casal-class\nsingle-instruction RMW, RMW2 "
                 "an exclusive pair; .acq/.rel annotate accesses.\n";
    return 0;
}
