/**
 * @file
 * Template-tier table: cold time-to-first-dispatch with the tier-0.5
 * template translator against the tier-1 pipeline, and against a PR-8
 * style certified cold start.
 *
 * The template tier constructs the post-optimization IR of a covered
 * block directly from the pre-decoded instruction stream -- no arena,
 * no frontend, no constant-fold/memory-elim/fence-merge passes -- and
 * its obligation graphs are checked once per engine instead of once
 * per block. The payoff is the cold-start path: the first dispatch of
 * a template-covered entry block skips the whole tier-1 pipeline.
 *
 * Measured (host wall-clock, like tab_analyze; everything else about
 * the run is deterministic simulated cycles):
 *
 *  - tier1:     templateTier off, the baseline cold start,
 *  - template:  templateTier on, entry block translated from the table,
 *  - certified: validateTranslations + an ahead-of-time certificate
 *               (the PR-8 cold-start accelerator; the template tier
 *               stands down under --validate by design, so this is the
 *               other cold-start option, not a combination).
 *
 * All modes must produce bit-identical guest results and verify.*
 * counters. Headline acceptance bar: the template tier reaches first
 * dispatch at least 1.5x faster than tier-1 (hard outside --smoke;
 * tab_template, tab_warmstart and tab_analyze all gate on the same
 * time_to_first_dispatch_ns field).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/certificate.hh"
#include "bench/common.hh"
#include "dbt/certify.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"

using namespace risotto;
using namespace risotto::bench;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

/** The cold workload: a fat template-covered ENTRY block (the
 * time-to-first-dispatch clock times exactly that block's
 * translation), then a short template-covered loop, then a declining
 * syscall tail. The entry block stays inside the template planner's
 * rules: stores hit distinct slots (no redundant-store elimination),
 * loads come only after the last store (a load before a store would
 * arm the fence merger), and the trip-count compare reads a register
 * the constant folder lost track of (add of a never-written register
 * keeps the value but defeats folding). */
gx86::GuestImage
templateWorkload(std::int64_t iters)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(512);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(6, 7);
    a.movri(2, iters);
    a.add(2, 0);
    for (int k = 0; k < 24; ++k) {
        a.store(3, 8 * k, 6);
        a.add(6, 1);
    }
    for (int k = 0; k < 8; ++k)
        a.load(4, 3, 256 + 8 * k);
    const auto out = a.newLabel();
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Le, out);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.store(3, 384, 6);
    a.add(6, 4);
    a.store(3, 392, 6);
    a.load(5, 3, 400);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.bind(out);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

struct Measurement
{
    double firstDispatchNs = 0.0; ///< Best-of-reps host wall-clock.
    dbt::RunResult result;        ///< The best rep's full run result.
};

/**
 * Cold-start a fresh engine @p reps times and keep the fastest
 * time-to-first-dispatch (the run itself is deterministic simulated
 * cycles, so any rep's RunResult serves the bit-identity checks).
 *
 * The timing image is a SHORT-iteration build of the workload -- the
 * entry block (the thing the window times) is byte-identical, but the
 * guest execution between reps stays small, so one rep's simulated run
 * does not evict the next rep's cold translation path from the host
 * caches. The full-length behaviour differential runs separately.
 */
Measurement
measure(const gx86::GuestImage &image, const DbtConfig &config,
        const analysis::Certificate *cert, std::size_t reps)
{
    Measurement best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        Dbt engine(image, config);
        if (cert != nullptr)
            fatalIf(!engine.setCertificate(*cert),
                    "certificate rejected by the consumer engine");
        std::vector<ThreadSpec> threads(1);
        auto result = engine.run(threads);
        fatalIf(!result.finished, "cold workload did not finish");
        const double ns = static_cast<double>(
            result.stats.get("dbt.time_to_first_dispatch_ns"));
        if (rep == 0 || ns < best.firstDispatchNs) {
            best.firstDispatchNs = ns;
            best.result = std::move(result);
        }
    }
    return best;
}

/** One full-length run for the behaviour differential. */
dbt::RunResult
runFull(const gx86::GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    std::vector<ThreadSpec> threads(1);
    auto result = engine.run(threads);
    fatalIf(!result.finished, "full workload did not finish");
    return result;
}

/** All stats under @p prefix, for the counter-identity checks. */
std::vector<std::pair<std::string, std::uint64_t>>
prefixed(const StatSet &stats, const std::string &prefix)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &[key, value] : stats.all())
        if (key.rfind(prefix, 0) == 0)
            out.emplace_back(key, value);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    const std::int64_t iters = smoke ? 50 : 400;
    const std::size_t reps = smoke ? 3 : 9;
    // Same entry block both ways; only the loop trip count differs.
    const gx86::GuestImage image = templateWorkload(2);
    const gx86::GuestImage full_image = templateWorkload(iters);

    DbtConfig tier1 = DbtConfig::risotto();
    tier1.templateTier = false;
    DbtConfig templated = DbtConfig::risotto();
    templated.templateTier = true;

    const Measurement off = measure(image, tier1, nullptr, reps);
    const Measurement on = measure(image, templated, nullptr, reps);

    // Bit-identity: guest results, verify/opt counters, and the
    // translated-code accounting must not see the tier at all -- on
    // the full-length workload as well as the timing one.
    const dbt::RunResult full_off = runFull(full_image, tier1);
    const dbt::RunResult full_on = runFull(full_image, templated);
    fatalIf(on.result.outputs != off.result.outputs ||
                on.result.exitCodes != off.result.exitCodes ||
                on.result.makespan != off.result.makespan ||
                full_on.outputs != full_off.outputs ||
                full_on.exitCodes != full_off.exitCodes ||
                full_on.makespan != full_off.makespan,
            "template tier changed guest-visible behaviour");
    for (const char *prefix : {"verify.", "opt.", "machine."}) {
        fatalIf(prefixed(on.result.stats, prefix) !=
                    prefixed(off.result.stats, prefix),
                std::string("template tier changed ") + prefix +
                    " counters");
        fatalIf(prefixed(full_on.stats, prefix) !=
                    prefixed(full_off.stats, prefix),
                std::string("template tier changed full-run ") + prefix +
                    " counters");
    }
    fatalIf(on.result.stats.get("dbt.template_blocks") == 0 ||
                full_on.stats.get("dbt.template_blocks") == 0,
            "template tier covered no blocks of the cold workload");

    // PR-8 comparison: the certificate-driven cold start (the template
    // tier self-disables under validateTranslations, so this is the
    // alternative accelerator, measured on the same image).
    DbtConfig cert_config = DbtConfig::risotto();
    cert_config.validateTranslations = true;
    cert_config.analysis = true;
    Dbt producer(image, cert_config);
    dbt::CertifyReport certify_report;
    bool have_cert = producer.analysis() != nullptr;
    analysis::Certificate cert;
    if (have_cert) {
        cert = dbt::certifyImage(image, cert_config, *producer.analysis(),
                                 producer.segment().get(), certify_report);
        have_cert = certify_report.blocksValidated > 0;
    }
    Measurement certified;
    if (have_cert) {
        DbtConfig skip_config = cert_config;
        skip_config.analysisSkip = true;
        certified = measure(image, skip_config, &cert, reps);
        fatalIf(certified.result.outputs != off.result.outputs ||
                    certified.result.exitCodes != off.result.exitCodes,
                "certified cold start diverged from tier-1");
    }

    const double speedup = off.firstDispatchNs / on.firstDispatchNs;
    ReportTable table("Cold time-to-first-dispatch: template tier vs "
                      "tier-1 pipeline",
                      {"mode", "tmpl blocks", "declined", "first disp us",
                       "vs tier1"});
    const auto row = [&](const std::string &name, const Measurement &m) {
        char us[32];
        std::snprintf(us, sizeof us, "%.2f", m.firstDispatchNs / 1e3);
        char rel[32];
        std::snprintf(rel, sizeof rel, "%.2fx",
                      off.firstDispatchNs / m.firstDispatchNs);
        table.addRow(
            {name,
             std::to_string(m.result.stats.get("dbt.template_blocks")),
             std::to_string(m.result.stats.get("dbt.template_declined")),
             us, rel});
    };
    row("tier1", off);
    row("template", on);
    if (have_cert)
        row("certified", certified);
    show(table);

    std::cout << "full-run cold makespan (simulated cycles, must be "
                 "identical): tier1 "
              << full_off.makespan << ", template " << full_on.makespan
              << "; template blocks "
              << full_on.stats.get("dbt.template_blocks") << ", declined "
              << full_on.stats.get("dbt.template_declined") << "\n\n";

    BenchJsonEntry entry;
    entry.name = "template.cold_first_dispatch.tier1";
    entry.nsPerOp = off.firstDispatchNs;
    entry.configFingerprint = persist::configFingerprint(tier1);
    entry.timeToFirstDispatchNs = off.firstDispatchNs;
    json.push_back(entry);
    entry.name = "template.cold_first_dispatch.template";
    entry.nsPerOp = on.firstDispatchNs;
    entry.configFingerprint = persist::configFingerprint(templated);
    entry.timeToFirstDispatchNs = on.firstDispatchNs;
    json.push_back(entry);
    if (have_cert) {
        entry.name = "template.cold_first_dispatch.certified";
        entry.nsPerOp = certified.firstDispatchNs;
        entry.configFingerprint = persist::configFingerprint(cert_config);
        entry.timeToFirstDispatchNs = certified.firstDispatchNs;
        json.push_back(entry);
    }
    writeBenchJson(json_path, json);

    std::cout << "template-tier first-dispatch speedup vs tier-1: "
              << speedup << "x (bar: 1.5x)\n";
    if (!smoke && speedup < 1.5) {
        std::cerr << "tab_template: template tier did not reach the "
                     "1.5x time-to-first-dispatch bar\n";
        return 1;
    }
    return 0;
}
