/**
 * @file
 * Extension table: x86 -> RISC-V (RVWMO), the other weak ISA the paper's
 * introduction motivates.
 *
 * The standard mapping from the RISC-V specification's memory-model
 * appendix (trailing FENCE r,rw after loads, leading write fence before
 * stores, fully-ordered amo.aqrl for RMWs, FENCE rw,rw for MFENCE) is
 * verified by Theorem-1 refinement against the simplified RVWMO model,
 * alongside the fence-free oracle. Notably, RVWMO needed the same
 * "fully-ordered AMO" reading that the paper's Arm-Cats strengthening
 * provides for casal -- RISC-V bakes it into the specification.
 *
 * Since the pluggable-backend PR the mapping here is the *same* table
 * the rv64 DBT backend emits from (mapping::lowerTcgFenceToRiscv /
 * mapTcgToRiscv, composed behind mapX86ToRiscv), so this bench is a
 * drift detector between Theorem-1 checking and emission. A second
 * table sweeps the RMW lowerings: the weak lr.d.aq/sc.d.rl pair (the
 * GCC-9-style helper bug transplanted to RISC-V) must be caught by
 * refinement, while amo.aqrl and the fence-bracketed LR/SC pass.
 */

#include <iostream>

#include "bench/common.hh"
#include "litmus/check.hh"
#include "litmus/library.hh"
#include "litmus/random.hh"
#include "mapping/schemes.hh"
#include "models/model.hh"
#include "support/rng.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;

int
main()
{
    std::cout << "Extension: verified x86 -> RISC-V (RVWMO) mapping\n\n";

    const models::X86Model x86;
    const models::RiscvModel rv;

    ReportTable table("Theorem 1 over the corpus",
                      {"test", "standard mapping", "fence-free"});
    std::size_t std_bad = 0;
    std::size_t free_bad = 0;
    for (const LitmusTest &test : x86Corpus()) {
        const Program mapped = mapping::mapX86ToRiscv(test.program);
        const Program bare =
            mapping::mapX86ToRiscv(test.program, /*with_fences=*/false);
        const bool std_ok =
            checkRefinement(test.program, x86, mapped, rv).correct;
        const bool free_ok =
            checkRefinement(test.program, x86, bare, rv).correct;
        std_bad += std_ok ? 0 : 1;
        free_bad += free_ok ? 0 : 1;
        table.addRow({test.program.name,
                      std_ok ? "refines" : "VIOLATED",
                      free_ok ? "refines" : "VIOLATED"});
    }
    show(table);

    // RMW-lowering sweep through the shared executable table.
    using mapping::RmwLowering;
    using mapping::TcgToArmScheme;
    using mapping::X86ToTcgScheme;
    const RmwLowering lowerings[] = {RmwLowering::InlineCasal,
                                     RmwLowering::FencedRmw2,
                                     RmwLowering::HelperRmw2AL};
    ReportTable rmw_table("RMW lowerings (rv64 backend schemes)",
                          {"lowering", "corpus", "violations"});
    for (const RmwLowering lowering : lowerings) {
        std::size_t bad = 0;
        std::size_t considered = 0;
        for (const LitmusTest &test : x86Corpus()) {
            const Program mapped = mapping::mapTcgToRiscv(
                mapping::mapX86ToTcg(test.program,
                                     X86ToTcgScheme::Risotto),
                TcgToArmScheme::Risotto, lowering);
            ++considered;
            if (!checkRefinement(test.program, x86, mapped, rv).correct)
                ++bad;
        }
        rmw_table.addRow({mapping::rmwLoweringName(lowering),
                          std::to_string(considered),
                          std::to_string(bad)});
    }
    show(rmw_table);

    Rng rng(31337);
    RandomProgramOptions opts;
    opts.maxInstrsPerThread = 3;
    opts.rmwPercent = 25;
    const int programs = 200;
    std::size_t random_ok = 0;
    for (int i = 0; i < programs; ++i) {
        const Program src = randomProgram(rng, opts);
        if (checkRefinement(src, x86, mapping::mapX86ToRiscv(src), rv)
                .correct)
            ++random_ok;
    }
    ReportTable rand_table("Random-program sweep",
                           {"programs", "refine", "violations"});
    rand_table.addRow({std::to_string(programs),
                       std::to_string(random_ok),
                       std::to_string(programs -
                                      static_cast<int>(random_ok))});
    show(rand_table);

    std::cout << "Expected: the standard mapping refines everything ("
              << std_bad << " violations); dropping the fences breaks "
              << free_bad << " corpus tests.\n"
              << "The fully-ordered amo.aqrl rule (RISC-V spec A.3.3) "
                 "plays the role of the paper's\ncasal strengthening: "
                 "without it, SBQ and SBAL fail exactly as they did on "
                 "Arm.\n";
    return 0;
}
