/**
 * @file
 * Figure 14: speed-up of the standard math library functions with
 * Risotto's dynamic host linker and with native execution, against QEMU
 * translating the guest (soft-float) libm. Higher is better; raw values
 * in ops/ms. The short call duration keeps marshalling from amortizing,
 * so risotto trails native here (Section 7.3).
 */

#include <iostream>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "hostlib/hostlib.hh"
#include "linker/hostlinker.hh"
#include "linker/idl.hh"
#include "support/error.hh"
#include "support/format.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::gx86;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

constexpr std::uint64_t Calls = 50;

GuestImage
buildImage(const std::string &fn)
{
    Assembler a;
    const auto start = a.newLabel();
    a.defineSymbol("main");
    a.jmp(start);
    hostlib::emitGuestMathLibrary(a);
    a.bind(start);
    a.movri(14, Calls);
    a.movfd(12, 0.73); // Argument in the kernels' convergence range.
    const auto loop = a.newLabel();
    a.bind(loop);
    a.movrr(1, 12);
    a.callImport(fn);
    a.subi(14, 1);
    a.cmpri(14, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

} // namespace

int
main()
{
    std::cout << "Figure 14: math library speed-up vs QEMU "
                 "(higher is better)\n\n";

    linker::HostLibraryRegistry registry;
    hostlib::registerAllLibraries(registry);
    linker::HostLinker linker(linker::parseIdl(hostlib::mathIdl()),
                              registry);

    ReportTable table("Speed-up w.r.t. QEMU",
                      {"function", "qemu[ops/ms]", "risotto", "native"});

    for (const std::string fn :
         {"sqrt", "exp", "log", "cos", "sin", "tan", "acos", "asin",
          "atan"}) {
        const GuestImage image = buildImage(fn);

        Dbt qemu_engine(image, DbtConfig::qemu());
        const auto qemu = qemu_engine.run({ThreadSpec{}});
        fatalIf(!qemu.finished, "qemu run did not finish");

        linker.scanImage(image);
        Dbt risotto_engine(image, DbtConfig::risotto(), &linker, &linker);
        const auto risotto = risotto_engine.run({ThreadSpec{}});
        fatalIf(!risotto.finished, "risotto run did not finish");

        // Native: direct call to the host libm (BL + body).
        gx86::Memory scratch;
        std::uint64_t native_cycles = 0;
        for (std::uint64_t c = 0; c < Calls; ++c) {
            std::uint64_t body = 0;
            registry.lookup(fn)({0x3fe75c28f5c28f5cULL}, scratch, body);
            native_cycles += body + 8;
        }

        table.addRow(
            {fn,
             fixedString(opsPerSecond(Calls, qemu.makespan) / 1000.0, 1),
             fixedString(static_cast<double>(qemu.makespan) /
                             risotto.makespan, 1),
             fixedString(static_cast<double>(qemu.makespan) /
                             native_cycles, 1)});
    }
    show(table);

    std::cout << "Paper shape: risotto 1x (sqrt) to ~10x (cos); native up "
                 "to ~25x -- marshalling dominates short calls, so "
                 "risotto does not reach native speed here.\n";
    return 0;
}
