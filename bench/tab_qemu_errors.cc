/**
 * @file
 * Section 3.2 reproduction: the translation errors in QEMU.
 *
 * For each counterexample program the table shows whether the weak
 * outcome is allowed by the source x86 model, by QEMU's translation
 * (under both RMW helper lowerings), and by Risotto's verified
 * translation -- the paper's claims are "forbidden / allowed / forbidden"
 * respectively. The FMR row covers the unsound read-after-write
 * transformation in the presence of Fmr fences.
 */

#include <iostream>

#include "bench/common.hh"
#include "litmus/check.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "mapping/transforms.hh"
#include "models/model.hh"
#include "support/stats.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::litmus;
using namespace risotto::mapping;

namespace
{

const models::X86Model kX86;
const models::TcgModel kTcg;
const models::ArmModel kArm(models::ArmModel::AmoRule::Corrected);

std::string
yn(bool allowed)
{
    return allowed ? "ALLOWED" : "forbidden";
}

bool
allowed(const Program &p, const models::ConsistencyModel &m,
        const Condition &c)
{
    return c.existsIn(enumerateBehaviors(p, m));
}

} // namespace

int
main()
{
    std::cout << "Section 3.2: translation errors in QEMU "
                 "(exhaustive litmus checking)\n\n";

    ReportTable table("QEMU translation errors",
                      {"test", "outcome", "x86 source",
                       "qemu+rmw1al", "qemu+rmw2al", "risotto"});

    for (const LitmusTest &test : {mpq(), sbq(), sbal()}) {
        const Program &src = test.program;
        const Program qemu1 =
            mapX86ToArm(src, X86ToTcgScheme::Qemu, TcgToArmScheme::Qemu,
                        RmwLowering::HelperRmw1AL);
        const Program qemu2 =
            mapX86ToArm(src, X86ToTcgScheme::Qemu, TcgToArmScheme::Qemu,
                        RmwLowering::HelperRmw2AL);
        const Program risotto =
            mapX86ToArm(src, X86ToTcgScheme::Risotto,
                        TcgToArmScheme::Risotto,
                        RmwLowering::InlineCasal);
        table.addRow({src.name, test.interesting.toString(),
                      yn(allowed(src, kX86, test.interesting)),
                      yn(allowed(qemu1, kArm, test.interesting)),
                      yn(allowed(qemu2, kArm, test.interesting)),
                      yn(allowed(risotto, kArm, test.interesting))});
    }

    // FMR: the RAW transformation error (an IR-to-IR transformation).
    {
        const LitmusTest src = fmrSource();
        const auto sites = findUnsoundRawAcrossAnyFence(src.program);
        const Program transformed = applyTransform(src.program, sites[0]);
        Condition c_is_3;
        c_is_3.reg(1, 1, 3);
        table.addRow({"FMR(RAW)", c_is_3.toString(),
                      yn(allowed(src.program, kTcg, c_is_3)),
                      yn(allowed(transformed, kTcg, c_is_3)), "-",
                      "rejected by vocabulary check"});
    }
    show(table);

    std::cout
        << "Expected (paper): every weak outcome is forbidden in x86 but\n"
           "allowed by QEMU's translation (MPQ under the casal helper,\n"
           "SBQ under the ldaxr/stlxr helper, SBAL under both), and\n"
           "forbidden again under Risotto's verified mappings. The RAW\n"
           "constant-propagation rewrite is unsound in the presence of\n"
           "Fmr fences; Risotto's optimizer refuses it (Section 4.1).\n";
    return 0;
}
