/**
 * @file
 * google-benchmark microbenchmarks of the infrastructure itself: the
 * relation algebra, the litmus enumerator, translation, and machine
 * stepping throughput. These measure the reproduction's own performance
 * (host wall-clock), not simulated guest time.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <unordered_map>

#include "dbt/backend.hh"
#include "dbt/dbt.hh"
#include "dbt/frontend.hh"
#include "dbt/tbcache.hh"
#include "gx86/assembler.hh"
#include "gx86/decoded.hh"
#include "gx86/interp.hh"
#include "litmus/enumerate.hh"
#include "litmus/library.hh"
#include "mapping/schemes.hh"
#include "memcore/relation.hh"
#include "models/model.hh"
#include "support/rng.hh"
#include "support/threadpool.hh"
#include "tcg/optimizer.hh"
#include "verify/verifier.hh"

using namespace risotto;

namespace
{

void
BM_RelationClosure(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    memcore::Relation r(n);
    for (std::size_t i = 0; i < n * 3; ++i)
        r.insert(static_cast<memcore::EventId>(rng.below(n)),
                 static_cast<memcore::EventId>(rng.below(n)));
    for (auto _ : state)
        benchmark::DoNotOptimize(r.transitiveClosure());
}
BENCHMARK(BM_RelationClosure)->Arg(16)->Arg(64)->Arg(256);

void
BM_EnumerateMp(benchmark::State &state)
{
    const litmus::LitmusTest test = litmus::mp();
    const models::X86Model model;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            litmus::enumerateBehaviors(test.program, model));
}
BENCHMARK(BM_EnumerateMp);

void
BM_EnumerateSbqUnderArm(benchmark::State &state)
{
    const litmus::LitmusTest test = litmus::sbq();
    const litmus::Program arm = mapping::mapX86ToArm(
        test.program, mapping::X86ToTcgScheme::Risotto,
        mapping::TcgToArmScheme::Risotto,
        mapping::RmwLowering::FencedRmw2);
    const models::ArmModel model(models::ArmModel::AmoRule::Corrected);
    for (auto _ : state)
        benchmark::DoNotOptimize(litmus::enumerateBehaviors(arm, model));
}
BENCHMARK(BM_EnumerateSbqUnderArm);

gx86::GuestImage
loopImage()
{
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, 1000);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.add(1, 2);
    a.xori(1, 0x5a);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

void
BM_TranslateBlock(benchmark::State &state)
{
    const gx86::GuestImage image = loopImage();
    for (auto _ : state) {
        dbt::Dbt engine(image, dbt::DbtConfig::risotto());
        benchmark::DoNotOptimize(engine.lookupOrTranslate(image.entry));
    }
}
BENCHMARK(BM_TranslateBlock);

/** A memory-dense block: the shape the validator is slowest on (event
 * count drives the relation algebra, not instruction count). */
gx86::GuestImage
memoryBlockImage(int accesses)
{
    gx86::Assembler a;
    const gx86::Addr buf = a.dataReserve(512);
    a.defineSymbol("main");
    a.movri(1, static_cast<std::int64_t>(buf));
    for (int i = 0; i < accesses; ++i) {
        if (i % 3 == 0)
            a.store(1, 8 * (i % 8), 4);
        else
            a.load(4, 1, 8 * (i % 8));
        if (i % 7 == 6)
            a.mfence();
    }
    a.hlt();
    return a.finish("main");
}

void
BM_ValidateTranslation(benchmark::State &state)
{
    // Translate once, then measure the per-TB validator cost alone: the
    // overhead risotto-run --validate adds to every translation.
    const gx86::GuestImage image =
        memoryBlockImage(static_cast<int>(state.range(0)));
    const dbt::DbtConfig config = dbt::DbtConfig::risotto();
    dbt::Frontend frontend(image, config, nullptr);
    const auto guest = frontend.decodeBlock(image.entry);
    tcg::Block block = frontend.translate(image.entry);
    tcg::optimize(block, config.optimizer);
    aarch::CodeBuffer buffer;
    struct Slots : dbt::ExitSlotAllocator
    {
        std::uint32_t next = 1;
        std::uint32_t staticSlot(std::uint64_t, std::uint64_t,
                                 aarch::CodeAddr, bool) override
        {
            return next++;
        }
        std::uint32_t dynamicSlot() override { return 0; }
    } slots;
    dbt::Backend backend(buffer, config);
    const aarch::CodeAddr entry = backend.compile(block, slots);
    const auto host = verify::decodeRange(buffer, entry, buffer.end());

    const verify::TbValidator validator({config.rmw});
    std::uint64_t pairs = 0;
    for (auto _ : state) {
        const auto report =
            validator.validate(guest, block, host, image.entry, false);
        pairs += report.pairsChecked;
        benchmark::DoNotOptimize(report);
    }
    state.counters["pairs/TB"] = static_cast<double>(
        pairs / std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_ValidateTranslation)->Arg(8)->Arg(24)->Arg(48);

/** loopImage with a dispatch-dominated trip count, so the measured
 * run() swamps interpreter setup. */
gx86::GuestImage
bigLoopImage()
{
    gx86::Assembler a;
    a.defineSymbol("main");
    a.movri(1, 0);
    a.movri(2, 100'000);
    const auto loop = a.newLabel();
    a.bind(loop);
    a.add(1, 2);
    a.xori(1, 0x5a);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(gx86::Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

// The interpreter dispatch loop, isolated: Arg(0) legacy
// decode-and-switch, Arg(1) pre-decoded threaded dispatch, Arg(2)
// pre-decoded + fusion. Guest behaviour (incl. retired-instruction
// counts) is identical across the three. Interpreter construction
// (memory image + segment build) is excluded from the timing.
void
BM_DispatchLoop(benchmark::State &state)
{
    const gx86::GuestImage image = bigLoopImage();
    gx86::InterpOptions options;
    options.decodeCache = state.range(0) != 0;
    options.fusion.enabled = state.range(0) == 2;
    std::uint64_t guest_instructions = 0;
    for (auto _ : state) {
        state.PauseTiming();
        gx86::Interpreter interp(image, options);
        state.ResumeTiming();
        const auto result = interp.run();
        guest_instructions += result.instructions;
        benchmark::DoNotOptimize(result.exitCode);
    }
    state.counters["guest_insns/s"] = benchmark::Counter(
        static_cast<double>(guest_instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchLoop)->Arg(0)->Arg(1)->Arg(2);

// The one-time whole-text pre-decode pass the decoder cache amortizes.
void
BM_PredecodeImage(benchmark::State &state)
{
    const gx86::GuestImage image = loopImage();
    const gx86::FusionConfig fusion;
    std::uint64_t entries = 0;
    for (auto _ : state) {
        const auto segment = gx86::DecodedSegment::build(image, fusion);
        entries = segment->validEntries();
        benchmark::DoNotOptimize(segment);
    }
    state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_PredecodeImage);

void
BM_EmulateLoop(benchmark::State &state)
{
    const gx86::GuestImage image = loopImage();
    dbt::Dbt engine(image, dbt::DbtConfig::risotto());
    std::uint64_t guest_instructions = 0;
    for (auto _ : state) {
        const auto result = engine.run({dbt::ThreadSpec{}});
        guest_instructions += result.stats.get("machine.instructions");
    }
    state.counters["host_instrs/s"] = benchmark::Counter(
        static_cast<double>(guest_instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulateLoop);

// TB-cache lookup cost: the ordered map the engine used before the
// tiered refactor vs the unordered map behind TranslationCache. Keys are
// spread like guest pcs (word-aligned, image-offset) and looked up in a
// hot-loop-like pattern.
std::vector<std::uint64_t>
fakePcs(std::size_t n)
{
    std::vector<std::uint64_t> pcs;
    pcs.reserve(n);
    Rng rng(11);
    std::uint64_t pc = 0x10000;
    for (std::size_t i = 0; i < n; ++i) {
        pc += 4 + 4 * rng.below(24);
        pcs.push_back(pc);
    }
    return pcs;
}

void
BM_TbLookupOrderedMap(benchmark::State &state)
{
    const auto pcs = fakePcs(static_cast<std::size_t>(state.range(0)));
    std::map<std::uint64_t, std::uint32_t> cache;
    for (std::size_t i = 0; i < pcs.size(); ++i)
        cache[pcs[i]] = static_cast<std::uint32_t>(i);
    for (auto _ : state)
        for (const std::uint64_t pc : pcs)
            benchmark::DoNotOptimize(cache.find(pc));
}
BENCHMARK(BM_TbLookupOrderedMap)->Arg(64)->Arg(1024);

void
BM_TbLookupUnorderedMap(benchmark::State &state)
{
    const auto pcs = fakePcs(static_cast<std::size_t>(state.range(0)));
    std::unordered_map<std::uint64_t, std::uint32_t> cache;
    cache.reserve(pcs.size());
    for (std::size_t i = 0; i < pcs.size(); ++i)
        cache[pcs[i]] = static_cast<std::uint32_t>(i);
    for (auto _ : state)
        for (const std::uint64_t pc : pcs)
            benchmark::DoNotOptimize(cache.find(pc));
}
BENCHMARK(BM_TbLookupUnorderedMap)->Arg(64)->Arg(1024);

void
BM_TranslationCacheLookup(benchmark::State &state)
{
    const auto pcs = fakePcs(static_cast<std::size_t>(state.range(0)));
    dbt::TranslationCache cache(pcs.size());
    for (std::size_t i = 0; i < pcs.size(); ++i)
        cache.insert(pcs[i], static_cast<aarch::CodeAddr>(i), 8,
                     dbt::Tier::Baseline);
    for (auto _ : state)
        for (const std::uint64_t pc : pcs)
            benchmark::DoNotOptimize(cache.find(pc));
}
BENCHMARK(BM_TranslationCacheLookup)->Arg(64)->Arg(1024);

// The dispatch fast path proper: a dispatch-like loop that repeatedly
// looks up a small hot working set (the common shape at block exits),
// where the direct-mapped jump cache answers nearly every probe. At
// Arg(64) the working set fits the jump cache outright; Arg(1024)
// mixes in conflict evictions.
void
BM_JumpCacheLookup(benchmark::State &state)
{
    const auto pcs = fakePcs(static_cast<std::size_t>(state.range(0)));
    dbt::TranslationCache cache(pcs.size());
    for (std::size_t i = 0; i < pcs.size(); ++i)
        cache.insert(pcs[i], static_cast<aarch::CodeAddr>(i), 8,
                     dbt::Tier::Baseline);
    // Warm the direct-mapped array exactly as a dispatch loop would.
    for (const std::uint64_t pc : pcs)
        cache.find(pc);
    for (auto _ : state)
        for (const std::uint64_t pc : pcs)
            benchmark::DoNotOptimize(cache.find(pc));
    state.counters["hit%"] =
        100.0 * static_cast<double>(cache.jumpCacheHits()) /
        static_cast<double>(cache.jumpCacheHits() +
                            cache.jumpCacheMisses());
}
BENCHMARK(BM_JumpCacheLookup)->Arg(64)->Arg(1024);

// Parallel-enumeration scaling: one SBQ-sized enumeration (RMWs plus
// loads, the densest choice tree in the corpus) partitioned over
// 1/2/4/8 workers. On a multi-core host this shows the wall-clock win;
// on a single hardware thread it degenerates gracefully (the jobs=1
// case takes the serial path with zero pool overhead).
void
BM_ParallelEnumerate(benchmark::State &state)
{
    const litmus::LitmusTest test = litmus::sbq();
    const models::X86Model model;
    support::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
    litmus::EnumerateOptions opts;
    opts.pool = &pool;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            litmus::enumerateBehaviors(test.program, model, nullptr,
                                       opts));
    state.counters["workers"] = static_cast<double>(pool.jobs());
}
BENCHMARK(BM_ParallelEnumerate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
