/**
 * @file
 * Serving table: multi-tenant session throughput, fault-retry cost, and
 * the degradation ladder.
 *
 * One shared artifact is prepared per mode (warm from a snapshot, cold
 * via reachable-block pre-translation, interpreter-only), then a batch
 * of sessions is served over it:
 *
 *  - throughput vs workers: host wall-clock for the whole batch at
 *    1/2/4/8 session workers over the warm artifact (per-session
 *    latency is simulated cycles and identical at any worker count),
 *  - fault-rate sweep: sessions under serve.session fault injection at
 *    increasing rates -- retries, recoveries, backoff cost, survivors,
 *  - degradation ladder: warm vs cold vs interpreter-only prepare cost
 *    and per-session latency, with every mode's sessions required to
 *    produce the warm mode's guest-visible results exactly.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "persist/fingerprint.hh"
#include "serve/manager.hh"
#include "support/error.hh"
#include "support/format.hh"
#include "workloads/workloads.hh"

using namespace risotto;
using namespace risotto::bench;

namespace
{

constexpr std::size_t GuestThreads = 2;

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t
quantile(std::vector<std::uint64_t> values, unsigned q)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const std::size_t index =
        std::min(values.size() - 1,
                 static_cast<std::size_t>(q) * values.size() / 100);
    return values[index];
}

std::vector<std::uint64_t>
latencies(const serve::ServeReport &report)
{
    std::vector<std::uint64_t> out;
    for (const serve::SessionResult &s : report.sessions)
        if (s.kind != serve::FailureKind::Shed)
            out.push_back(s.latency);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    const std::size_t sessions = smoke ? 16 : 96;
    workloads::WorkloadSpec spec = workloads::fullSuite().front();
    if (smoke)
        spec.iterations = 50;
    const gx86::GuestImage image = workloads::buildGuestWorkload(spec);
    const dbt::DbtConfig config = dbt::DbtConfig::risotto();
    const std::uint64_t fingerprint = persist::configFingerprint(config);

    // Produce the warm-start snapshot the way a deployment would: one
    // profiling run, exported.
    const std::string snapshot_path = "tab_serve.rtbc";
    {
        dbt::Dbt profiler(image, config);
        std::vector<dbt::ThreadSpec> threads(GuestThreads);
        for (std::size_t t = 0; t < GuestThreads; ++t)
            threads[t].regs[0] = t;
        if (!profiler.run(threads).finished)
            throw FatalError("profiling run did not finish: " + spec.name);
        if (!profiler.savePersistentCache(snapshot_path))
            throw FatalError("cannot write " + snapshot_path);
    }

    std::cout << "Serving: " << sessions << " sessions of " << spec.name
              << " (" << GuestThreads << " guest threads each) over one "
              << "shared artifact\n\n";

    serve::ServeConfig base;
    base.sessions = sessions;
    base.session.threads = GuestThreads;

    // --- Throughput vs workers (warm artifact). -----------------------
    serve::ArtifactConfig warm_config;
    warm_config.config = config;
    warm_config.snapshotPath = snapshot_path;
    const serve::SharedArtifact warm(image, warm_config);
    if (warm.mode() != serve::ArtifactMode::Warm)
        throw FatalError("snapshot did not warm-start the artifact");

    ReportTable throughput("Batch wall-clock vs session workers (warm)",
                           {"jobs", "wall[ms]", "sessions/s", "p50[kcyc]",
                            "p99[kcyc]", "ok"});
    serve::ServeReport reference;
    for (const std::size_t jobs : {1, 2, 4, 8}) {
        serve::ServeConfig cfg = base;
        cfg.jobs = jobs;
        const auto t0 = std::chrono::steady_clock::now();
        serve::ServeReport report = serve::runSessions(warm, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = msBetween(t0, t1);
        const auto lat = latencies(report);
        throughput.addRow(
            {std::to_string(jobs), fixedString(wall_ms, 2),
             fixedString(wall_ms > 0 ? sessions * 1e3 / wall_ms : 0.0, 1),
             fixedString(quantile(lat, 50) / 1e3, 1),
             fixedString(quantile(lat, 99) / 1e3, 1),
             std::to_string(report.succeeded)});
        json.push_back({"serve." + spec.name + ".batch_wall",
                        wall_ms * 1e6 / sessions, jobs, fingerprint});
        if (jobs == 1)
            reference = std::move(report);
    }
    show(throughput);

    // --- Fault-rate sweep (warm artifact, default retry policy). ------
    ReportTable sweep("Fault-rate sweep (serve.session site, 3 attempts)",
                      {"rate", "ok", "failed", "retries", "recovered",
                       "p99[kcyc]", "backoff[kcyc]"});
    for (const double rate : {0.0, 0.001, 0.01, 0.05}) {
        serve::ServeConfig cfg = base;
        cfg.jobs = 4;
        if (rate > 0.0) {
            cfg.session.faults.seed = 20260809;
            cfg.session.faults.siteRates[faultsites::ServeSession] = rate;
        }
        const serve::ServeReport report = serve::runSessions(warm, cfg);
        sweep.addRow(
            {fixedString(rate, 3), std::to_string(report.succeeded),
             std::to_string(report.failed),
             std::to_string(report.stats.get("serve.retries")),
             std::to_string(report.stats.get("serve.recovered")),
             fixedString(quantile(latencies(report), 99) / 1e3, 1),
             fixedString(report.stats.get("serve.backoff_cycles") / 1e3,
                         1)});
        if (rate == 0.01)
            json.push_back({"serve." + spec.name + ".p99_faulty",
                            seconds(quantile(latencies(report), 99)) * 1e9,
                            4, fingerprint});
    }
    show(sweep);

    // --- Degradation ladder. ------------------------------------------
    ReportTable ladder("Degradation ladder (4 workers, fault-free)",
                       {"mode", "prepare[ms]", "blocks", "hit%",
                        "p50[kcyc]", "ok", "identical"});
    struct Rung
    {
        const char *label;
        serve::ArtifactConfig config;
    };
    std::vector<Rung> rungs;
    rungs.push_back({"warm", warm_config});
    serve::ArtifactConfig cold_config;
    cold_config.config = config;
    rungs.push_back({"cold", cold_config});
    serve::ArtifactConfig interp_config;
    interp_config.config = config;
    interp_config.interpreterOnly = true;
    rungs.push_back({"interp", interp_config});
    for (const Rung &rung : rungs) {
        const auto p0 = std::chrono::steady_clock::now();
        const serve::SharedArtifact artifact(image, rung.config);
        const auto p1 = std::chrono::steady_clock::now();
        serve::ServeConfig cfg = base;
        cfg.jobs = 4;
        const serve::ServeReport report = serve::runSessions(artifact, cfg);
        bool identical = true;
        for (std::size_t s = 0; s < report.sessions.size(); ++s)
            identical = identical &&
                        report.sessions[s].exitCodes ==
                            reference.sessions[s].exitCodes &&
                        report.sessions[s].outputs ==
                            reference.sessions[s].outputs;
        const std::uint64_t hits = report.stats.get("serve.shared_hits");
        const std::uint64_t dispatches =
            hits + report.stats.get("serve.fallback_blocks");
        const auto lat = latencies(report);
        ladder.addRow(
            {rung.label, fixedString(msBetween(p0, p1), 2),
             std::to_string(artifact.cache().size()),
             fixedString(dispatches > 0 ? 100.0 * hits / dispatches : 0.0,
                         1),
             fixedString(quantile(lat, 50) / 1e3, 1),
             std::to_string(report.succeeded), identical ? "yes" : "NO"});
        json.push_back({std::string("serve.") + spec.name + "." +
                            rung.label + "_p50",
                        seconds(quantile(lat, 50)) * 1e9, 4, fingerprint});
    }
    show(ladder);

    std::cout << "Wall-clock columns are host time (expect container "
                 "noise); latency columns are deterministic simulated "
                 "cycles.\n";
    writeBenchJson(json_path, json);
    std::remove(snapshot_path.c_str());
    return 0;
}
