/**
 * @file
 * Tier-2 superblock ablation.
 *
 * A hot loop whose body overflows the frontend's 64-instruction block
 * cap is the worst case for basic-block-granularity optimization: the
 * split point is a seam that hides a same-address store pair (and its
 * Fww fences) from the per-block optimizer. Tier 2 re-translates the hot
 * region as one superblock, so the WAW elimination and fence merge fire
 * across the former seam. The table compares tier 2 off/on on the same
 * image: makespan, superblocks formed, cross-block eliminations, and the
 * DMB ST count the removed fences no longer execute.
 *
 * --smoke shrinks the iteration count for CI.
 */

#include <iostream>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"
#include "support/format.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::gx86;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

/**
 * A loop whose body is 80 same-address stores (plus control): the
 * frontend splits it at its 64-instruction block cap, so every
 * iteration crosses a block seam mid-store-run. Per-block optimization
 * collapses each side's run to one fenced store, but the pair
 * straddling the seam survives until tier 2 splices the region.
 */
GuestImage
fencedSeamLoop(std::int64_t iterations)
{
    Assembler a;
    const Addr buf = a.dataReserve(64);
    a.defineSymbol("main");
    a.movri(3, static_cast<std::int64_t>(buf));
    a.movri(4, 7);
    a.movri(2, iterations);
    const auto loop = a.newLabel();
    a.bind(loop);
    for (int k = 0; k < 80; ++k)
        a.store(3, 0, 4);
    a.subi(2, 1);
    a.cmpri(2, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

dbt::RunResult
run(const GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    auto result = engine.run({ThreadSpec{}});
    fatalIf(!result.finished, "ablation run did not finish");
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;
    const std::int64_t iterations = smoke ? 300 : 2000;

    std::cout << "Tier-2 superblock ablation (" << iterations
              << "-iteration fenced seam loop)\n\n";

    const GuestImage image = fencedSeamLoop(iterations);

    ReportTable table("Superblock translation off/on",
                      {"variant", "superblocks", "subsumed",
                       "xblock fences", "xblock mem ops", "dmb st",
                       "tb exits", "Mcycles"});
    std::uint64_t off_makespan = 0;
    std::vector<std::int64_t> off_exits;
    for (const bool tier2 : {false, true}) {
        DbtConfig config = DbtConfig::risotto();
        config.tier2 = tier2;
        config.name = tier2 ? "tier2 on" : "tier2 off";
        const auto result = run(image, config);
        json.push_back({std::string("superblock.") +
                            (tier2 ? "tier2_on" : "tier2_off"),
                        seconds(result.makespan) * 1e9, 1,
                        persist::configFingerprint(config)});
        if (!tier2) {
            off_makespan = result.makespan;
            off_exits = result.exitCodes;
        } else {
            fatalIf(result.exitCodes != off_exits,
                    "tier2 changed guest-visible results");
        }
        table.addRow(
            {config.name, std::to_string(result.tier2Superblocks),
             std::to_string(result.tier2BlocksSubsumed),
             std::to_string(result.crossBlockFencesRemoved),
             std::to_string(result.crossBlockMemOpsEliminated),
             std::to_string(result.stats.get("machine.dmb_st")),
             std::to_string(result.stats.get("machine.tb_exits")),
             fixedString(result.makespan / 1e6, 3)});
        if (tier2 && off_makespan > 0) {
            std::cout << "tier2 makespan: "
                      << fixedString(
                             100.0 * result.makespan / off_makespan, 1)
                      << "% of tier1-only\n\n";
        }
    }
    show(table);

    std::cout << "The seam hides one same-address store pair per "
                 "iteration from the per-block\noptimizer; the "
                 "superblock removes the dead store and merges its Fww "
                 "into the\nsurviving one, saving a DMB ST plus a store "
                 "and its drain every iteration.\n";
    writeBenchJson(json_path, json);
    return 0;
}
