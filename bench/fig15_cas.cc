/**
 * @file
 * Figure 15: throughput of the CAS instruction under varying contention
 * ((#threads - #vars) configurations), comparing QEMU's helper-call
 * translation, Risotto's direct casal translation (Section 6.3), and
 * native execution. Higher is better.
 *
 * Expected shape: Risotto beats QEMU only without contention
 * (#threads == #vars), where the helper-call overhead is visible; under
 * contention the cache-line transfer dominates and they converge.
 */

#include <iostream>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "gx86/assembler.hh"
#include "machine/machine.hh"
#include "support/error.hh"
#include "support/format.hh"

using namespace risotto;
using namespace risotto::bench;
using namespace risotto::gx86;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::ThreadSpec;

namespace
{

constexpr std::uint64_t Iterations = 400;
constexpr Addr VarBase = 0x0048'0000; ///< One variable per cache line.

/**
 * Guest kernel: each thread CAS-increments its variable
 * (vars[tid % nvars]) in a read/compare-and-swap retry loop -- the
 * classic atomic-increment idiom.
 */
GuestImage
buildGuestCas(unsigned nvars)
{
    Assembler a;
    a.defineSymbol("main");
    // r4 = &vars[tid % nvars]  (64-byte spacing).
    a.movrr(4, 0);
    a.movri(5, nvars);
    a.movrr(6, 4);
    a.udiv(6, 5);
    a.mul(6, 5);
    a.sub(4, 6); // tid % nvars
    a.shli(4, 6); // * 64
    a.movri(6, static_cast<std::int64_t>(VarBase));
    a.add(4, 6);
    a.movri(14, Iterations);
    const auto loop = a.newLabel();
    a.bind(loop);
    // CAS increment: expected = load; lock cmpxchg(desired=expected+1).
    a.load(0, 4, 0);
    a.movrr(6, 0);
    a.addi(6, 1);
    a.lockCmpxchg(4, 0, 6);
    a.subi(14, 1);
    a.cmpri(14, 0);
    a.jcc(Cond::Gt, loop);
    a.movri(0, 0);
    a.movri(1, 0);
    a.syscall();
    return a.finish("main");
}

std::uint64_t
runGuest(const GuestImage &image, const DbtConfig &config,
         unsigned threads)
{
    Dbt engine(image, config);
    std::vector<ThreadSpec> specs(threads);
    for (unsigned t = 0; t < threads; ++t)
        specs[t].regs[0] = t;
    const auto result = engine.run(specs);
    fatalIf(!result.finished, "cas benchmark did not finish");
    return result.makespan;
}

std::uint64_t
runNative(unsigned threads, unsigned nvars)
{
    aarch::CodeBuffer code;
    aarch::Emitter em(code);
    const aarch::CodeAddr entry = em.here();
    // x4 = &vars[tid % nvars].
    em.movImm(5, nvars);
    em.udiv(6, 0, 5);
    em.mul(6, 6, 5);
    em.sub(4, 0, 6);
    em.lsli(4, 4, 6);
    em.movImm(6, VarBase);
    em.add(4, 4, 6);
    em.movImm(14, Iterations);
    const auto loop = em.newLabel();
    em.bind(loop);
    em.ldr(1, 4, 0);
    em.addi(2, 1, 1);
    em.casal(1, 2, 4);
    em.subi(14, 14, 1);
    em.cbnz(14, loop);
    em.hlt();
    em.finish();

    gx86::Memory memory;
    machine::Machine machine(code, memory, {});
    for (unsigned t = 0; t < threads; ++t) {
        const std::size_t idx = machine.addCore(entry);
        machine.core(idx).x[0] = t;
    }
    fatalIf(!machine.run(), "native cas benchmark did not finish");
    return machine.makespan();
}

} // namespace

int
main()
{
    std::cout << "Figure 15: CAS throughput under contention "
                 "(higher is better)\n\n";

    ReportTable table("CAS throughput [Mops/s]",
                      {"threads-vars", "qemu", "risotto", "native",
                       "risotto/qemu"});

    const std::pair<unsigned, unsigned> configs[] = {
        {1, 1}, {4, 1}, {4, 2}, {4, 4}, {8, 1},
        {8, 4}, {8, 8}, {16, 1}, {16, 8}, {16, 16},
    };

    double uncontended_gain = 0.0;
    int uncontended_count = 0;
    double contended_gain = 0.0;
    int contended_count = 0;

    for (const auto &[threads, nvars] : configs) {
        const GuestImage image = buildGuestCas(nvars);
        const std::uint64_t ops =
            static_cast<std::uint64_t>(threads) * Iterations;
        const std::uint64_t qemu =
            runGuest(image, DbtConfig::qemu(), threads);
        const std::uint64_t risotto =
            runGuest(image, DbtConfig::risotto(), threads);
        const std::uint64_t native = runNative(threads, nvars);

        const double ratio =
            static_cast<double>(qemu) / static_cast<double>(risotto);
        if (threads == nvars) {
            uncontended_gain += ratio;
            ++uncontended_count;
        } else {
            contended_gain += ratio;
            ++contended_count;
        }

        table.addRow({std::to_string(threads) + "-" +
                          std::to_string(nvars),
                      fixedString(opsPerSecond(ops, qemu) / 1e6, 1),
                      fixedString(opsPerSecond(ops, risotto) / 1e6, 1),
                      fixedString(opsPerSecond(ops, native) / 1e6, 1),
                      fixedString(ratio, 2)});
    }
    show(table);

    std::cout << "Uncontended (threads == vars) risotto/qemu: "
              << fixedString(uncontended_gain / uncontended_count, 2)
              << "x average (paper: up to 1.48x, 1.145x average)\n"
              << "Contended risotto/qemu: "
              << fixedString(contended_gain / contended_count, 2)
              << "x average (paper: ~1x -- casal dominates)\n";
    return 0;
}
