/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * All measurements are deterministic simulated cycle counts from the
 * weak-memory machine; a nominal 2.0 GHz clock (the paper's ThunderX2
 * frequency) converts cycles to seconds for throughput-style numbers.
 */

#ifndef RISOTTO_BENCH_COMMON_HH
#define RISOTTO_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/hostisa.hh"
#include "support/stats.hh"

namespace risotto::bench
{

/** True when the binary was invoked with --smoke (CI: small problem
 * sizes, exercising every code path without the full measurement). */
inline bool
smokeMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return true;
    return false;
}

/** Nominal host clock (paper testbed: ThunderX2 at 2.0 GHz). */
constexpr double ClockHz = 2.0e9;

/** Cycles -> seconds at the nominal clock. */
inline double
seconds(std::uint64_t cycles)
{
    return static_cast<double>(cycles) / ClockHz;
}

/** Operations per second given total ops and cycles. */
inline double
opsPerSecond(std::uint64_t ops, std::uint64_t cycles)
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(ops) * ClockHz /
           static_cast<double>(cycles);
}

/** Print a table followed by a blank line. */
inline void
show(const ReportTable &table)
{
    table.print(std::cout);
    std::cout << "\n";
}

/** Value of `--bench-json PATH`, or empty when absent. */
inline std::string
benchJsonPath(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--bench-json") == 0)
            return argv[i + 1];
    return {};
}

/** One headline measurement for the cross-PR perf trajectory. */
struct BenchJsonEntry
{
    std::string name;
    double nsPerOp = 0.0;
    std::size_t workers = 1;

    /** persist::configFingerprint of the DbtConfig measured, so two
     * artifacts are only compared when the pipeline matched; 0 when
     * the entry is not tied to one engine configuration. */
    std::uint64_t configFingerprint = 0;

    /** Host backend the measured translations target ("aarch" unless
     * the harness measured the rv64 backend). Declared after the
     * fingerprint so the common positional {name, ns, workers,
     * fingerprint} initializer keeps working. */
    support::HostIsa host = support::HostIsa::Aarch;

    /** Guest instructions the measured run retired (0 when the entry
     * is not an execution measurement). */
    std::uint64_t guestInsns = 0;

    /** Host wall-clock nanoseconds per retired guest instruction (0
     * when guestInsns is 0). */
    double nsPerGuestInsn = 0.0;

    /** Host wall-clock nanoseconds from engine dispatch to the entry
     * block's first translation being ready (0 when the entry is not
     * an execution measurement) -- the cold-start headline the
     * template-tier, warm-start and analyze tables gate on. */
    double timeToFirstDispatchNs = 0.0;
};

/** Git revision baked in at build time ("unknown" outside a work tree). */
#ifndef RISOTTO_GIT_SHA
#define RISOTTO_GIT_SHA "unknown"
#endif

/**
 * Write entries as a JSON array of {name, ns_per_op, workers, host,
 * guest_insns, ns_per_guest_insn, time_to_first_dispatch_ns, git_sha,
 * config_fingerprint, timestamp} objects. The timestamp is ISO-8601 UTC
 * and the git SHA is the build-time revision, one each per file write,
 * so CI artifacts from different PRs order and key themselves. The
 * fingerprint is hex text: u64 does not survive a JSON double.
 */
inline void
writeBenchJson(const std::string &path,
               const std::vector<BenchJsonEntry> &entries)
{
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench: cannot write " << path << "\n";
        return;
    }
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char stamp[32];
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
    out << "[\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BenchJsonEntry &e = entries[i];
        char fingerprint[19];
        std::snprintf(fingerprint, sizeof fingerprint, "0x%016llx",
                      static_cast<unsigned long long>(e.configFingerprint));
        out << "  {\"name\": \"" << e.name
            << "\", \"ns_per_op\": " << e.nsPerOp
            << ", \"workers\": " << e.workers
            << ", \"host\": \"" << support::hostIsaName(e.host)
            << "\", \"guest_insns\": " << e.guestInsns
            << ", \"ns_per_guest_insn\": " << e.nsPerGuestInsn
            << ", \"time_to_first_dispatch_ns\": "
            << e.timeToFirstDispatchNs
            << ", \"git_sha\": \"" << RISOTTO_GIT_SHA
            << "\", \"config_fingerprint\": \"" << fingerprint
            << "\", \"timestamp\": \"" << stamp << "\"}"
            << (i + 1 == entries.size() ? "\n" : ",\n");
    }
    out << "]\n";
}

} // namespace risotto::bench

#endif // RISOTTO_BENCH_COMMON_HH
