/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * All measurements are deterministic simulated cycle counts from the
 * weak-memory machine; a nominal 2.0 GHz clock (the paper's ThunderX2
 * frequency) converts cycles to seconds for throughput-style numbers.
 */

#ifndef RISOTTO_BENCH_COMMON_HH
#define RISOTTO_BENCH_COMMON_HH

#include <cstdint>
#include <cstring>
#include <iostream>

#include "support/stats.hh"

namespace risotto::bench
{

/** True when the binary was invoked with --smoke (CI: small problem
 * sizes, exercising every code path without the full measurement). */
inline bool
smokeMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return true;
    return false;
}

/** Nominal host clock (paper testbed: ThunderX2 at 2.0 GHz). */
constexpr double ClockHz = 2.0e9;

/** Cycles -> seconds at the nominal clock. */
inline double
seconds(std::uint64_t cycles)
{
    return static_cast<double>(cycles) / ClockHz;
}

/** Operations per second given total ops and cycles. */
inline double
opsPerSecond(std::uint64_t ops, std::uint64_t cycles)
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(ops) * ClockHz /
           static_cast<double>(cycles);
}

/** Print a table followed by a blank line. */
inline void
show(const ReportTable &table)
{
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace risotto::bench

#endif // RISOTTO_BENCH_COMMON_HH
