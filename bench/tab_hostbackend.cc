/**
 * @file
 * Host-backend parity table: every PARSEC/Phoenix proxy runs end-to-end
 * through the DBT twice -- once emitting aarch host code, once emitting
 * rv64 host code -- with translation validation on in both runs. The
 * harness asserts the two backends retire bit-identical guest results
 * (exit codes and outputs) and zero ordering violations, then reports
 * the simulated-cycle cost of targeting each host.
 *
 * The rv64/aarch ratio is the price of the RVWMO mapping (fence-bearing
 * `fence` encodings plus the backend's different instruction costs); it
 * is a drift detector, not a paper figure.
 */

#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "dbt/dbt.hh"
#include "persist/fingerprint.hh"
#include "support/error.hh"
#include "support/format.hh"
#include "support/hostisa.hh"
#include "workloads/workloads.hh"

using namespace risotto;
using namespace risotto::bench;
using dbt::Dbt;
using dbt::DbtConfig;
using dbt::RunResult;
using dbt::ThreadSpec;
using support::HostIsa;
using workloads::WorkloadSpec;

namespace
{

constexpr std::size_t Threads = 4;

RunResult
runHost(const gx86::GuestImage &image, const DbtConfig &config)
{
    Dbt engine(image, config);
    std::vector<ThreadSpec> threads(Threads);
    for (std::size_t t = 0; t < Threads; ++t)
        threads[t].regs[0] = t;
    RunResult result = engine.run(threads);
    if (!result.finished)
        throw FatalError("workload did not finish under host " +
                         std::string(support::hostIsaName(config.host)));
    if (result.validationViolations != 0)
        throw FatalError("translation validator flagged " +
                         std::to_string(result.validationViolations) +
                         " violations under host " +
                         std::string(support::hostIsaName(config.host)));
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    const std::string json_path = benchJsonPath(argc, argv);
    std::vector<BenchJsonEntry> json;

    std::cout << "Host-backend parity: aarch vs rv64, validated, "
              << Threads << " threads\n\n";

    ReportTable table("Guest-identical runs per host backend",
                      {"benchmark", "aarch[Mcyc]", "rv64[Mcyc]",
                       "rv64/aarch", "identical"});

    double ratio_sum = 0.0;
    std::size_t count = 0;
    for (WorkloadSpec spec : workloads::fullSuite()) {
        if (smoke)
            spec.iterations = 50; // CI: every proxy, briefly.
        const gx86::GuestImage image = workloads::buildGuestWorkload(spec);

        DbtConfig aarch_config = DbtConfig::risotto();
        aarch_config.validateTranslations = true;
        aarch_config.host = HostIsa::Aarch;
        DbtConfig rv64_config = aarch_config;
        rv64_config.host = HostIsa::Rv64;

        const RunResult on_aarch = runHost(image, aarch_config);
        const RunResult on_rv64 = runHost(image, rv64_config);

        const bool identical = on_aarch.exitCodes == on_rv64.exitCodes &&
                               on_aarch.outputs == on_rv64.outputs;
        if (!identical)
            throw FatalError("guest results diverge across host "
                             "backends for " + spec.name);

        const double ratio = static_cast<double>(on_rv64.makespan) /
                             static_cast<double>(on_aarch.makespan);
        ratio_sum += ratio;
        ++count;
        table.addRow({spec.name,
                      fixedString(on_aarch.makespan / 1e6, 2),
                      fixedString(on_rv64.makespan / 1e6, 2),
                      fixedString(ratio, 3), "yes"});

        BenchJsonEntry aarch_entry{
            "hostbackend." + spec.name + ".aarch",
            seconds(on_aarch.makespan) * 1e9, Threads,
            persist::configFingerprint(aarch_config)};
        aarch_entry.host = HostIsa::Aarch;
        json.push_back(aarch_entry);
        BenchJsonEntry rv64_entry{
            "hostbackend." + spec.name + ".rv64",
            seconds(on_rv64.makespan) * 1e9, Threads,
            persist::configFingerprint(rv64_config)};
        rv64_entry.host = HostIsa::Rv64;
        json.push_back(rv64_entry);
    }
    show(table);

    std::cout << "All " << count
              << " workloads produced bit-identical guest results and "
                 "validated clean under both host backends.\n"
              << "Mean rv64/aarch makespan ratio: "
              << fixedString(ratio_sum / static_cast<double>(count), 3)
              << "\n";
    writeBenchJson(json_path, json);
    return 0;
}
